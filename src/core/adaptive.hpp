// Adaptive future scheduling: per-submit-site profitability control.
//
// Strong ordering semantics (paper §II) makes parallel evaluation of a
// transactional future *purely a scheduling decision*: running the body
// synchronously at the submit point is, by definition, the sequential
// execution every parallel run must be equivalent to. So the runtime is
// free to decide, per submit() call, whether spawning a sibling
// sub-transaction actually pays for its activation cost (node creation,
// pool hop, per-node validation, join wait) — and to elide the future
// inline when it does not. "On the Cost of Concurrency in Transactional
// Memory" formalizes exactly this regime; the paper itself notes futures
// only win when the spawned work outweighs the overhead.
//
// Mechanism: every submit call site owns a cache-padded SiteStats slot
// (keyed by the caller's return address, or an explicit TXF_SUBMIT_SITE
// tag) accumulating an EWMA of body runtime, join-wait time, a conflict-
// rate EWMA, a commit-footprint-width EWMA, and per-site abort counts
// split by AbortCause. A four-state hysteresis machine —
//
//      kParallel ──demote──▶ kProbation ──harden──▶ kInline
//        ▲   │ ▲                  │    ▲               ▲ │
//        │   │ └────promote───────┘    └──(re-)probe───┼─┘
//        │   └conflict▶ kOrdered ──conflict persists───┘
//        └──clean probes───┘
//
// — decides in O(1) on the submit fast path. Two independent inputs drive
// it:
//  * PROFITABILITY (body size vs spawn cost): parallel sites demote when
//    their EWMA body time stays under a load-scaled threshold; probation
//    runs inline but keeps sampling and either earns parallelism back or
//    hardens to inline; inline sites periodically re-probe so phase
//    changes are never locked out.
//  * CONFLICT RATE: a per-site EWMA of "parallel run ended in a
//    chargeable conflict abort" — pumped by tree_order / read-validation /
//    inter-tree charges, decayed by clean parallel completions; ONLY
//    parallel-lane runs move it, so it estimates what parallel execution
//    would cost right now. A site above the demote bar moves to kOrdered
//    regardless of how profitable its bodies look ("On the Cost of
//    Concurrency in TM": speculation under high conflict is a net loss).
//    kOrdered keeps the split structure but runs sibling bodies in
//    submission (pre-order) order on the submitting thread — predefined-
//    order serialization instead of abort-retry churn. Conflicts that
//    survive ordering are inter-tree, so persistent charges harden the
//    site to kInline; sparse parallel probes (their own, denser cadence)
//    decay the EWMA and promote the site back once the burst is over.
//
// The footprint EWMA (stripe width of top-level commits this site's
// futures participate in, attributed by TxTree::do_top_commit) scales the
// profitability bar: a wide-footprint site commits through the spine's
// serializing multi-stripe path, so parallel speculation buys less and the
// site is biased toward co-located execution (commit_spine.hpp).
//
// Decisions are instrumented with txtrace instants (adaptive.decide) and
// core.adaptive.* metrics, and the whole controller is the first consumer
// of the observability layer PR 4 built.
//
// Config: Config::scheduling selects kAlwaysParallel (pre-adaptive
// behaviour) / kAlwaysInline / kAdaptive (default); the adaptive_* knobs
// tune the thresholds. See docs/ARCHITECTURE.md and DESIGN.md §5e.
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "core/config.hpp"
#include "obs/abort_cause.hpp"
#include "obs/metrics.hpp"
#include "sched/thread_pool.hpp"
#include "util/cache_line.hpp"

namespace txf::core::adaptive {

/// Hysteresis state of one submit site (stored as one byte in SiteStats).
enum class SiteState : std::uint8_t {
  kParallel = 0,   // futures spawn as parallel sibling sub-transactions
  kProbation = 1,  // elided inline, still sampling; can promote or harden
  kInline = 2,     // elided inline; re-probes parallel periodically
  kOrdered = 3,    // ordered lane: real split, body run in pre-order on the
                   // submitting thread (conflict-demoted; between kParallel
                   // and kInline)
};

/// Which lane a timed body completion ran on (feeds note_body_sample —
/// only kParallel runs move the conflict-rate EWMA, because only they
/// measure what parallel execution costs).
enum class RunKind : std::uint8_t {
  kInline = 0,    // elided at the submit point, no node
  kParallel = 1,  // sibling sub-transaction racing on a pool thread
  kOrdered = 2,   // sibling sub-transaction, run synchronously in pre-order
};

/// Tuning derived from Config (one copy per AdaptiveScheduler; SiteStats
/// methods take it by reference so unit tests can drive the state machine
/// with synthetic parameters and no Runtime).
struct Params {
  std::uint64_t inline_threshold_ns = 4000;
  std::uint32_t min_samples = 8;
  std::uint32_t demote_after = 8;
  std::uint32_t harden_after = 12;
  std::uint32_t promote_after = 4;
  std::uint32_t reprobe_period = 256;
  /// Conflict-rate EWMA bars in x1024 fixed point (Config knobs are
  /// permille; AdaptiveScheduler converts). Demote kParallel -> kOrdered at
  /// or above `conflict_demote_x1024`; promote kOrdered -> kParallel at or
  /// below `conflict_promote_x1024`.
  std::uint32_t conflict_demote_x1024 = 154;  // ~150 permille
  std::uint32_t conflict_promote_x1024 = 61;  // ~60 permille
  /// Re-probe cadence for conflict-demoted states (kOrdered, and kInline
  /// reached via the conflict path). 0 = never.
  std::uint32_t ordered_reprobe_period = 64;
  /// Chargeable conflicts observed while kOrdered before hardening to
  /// kInline (ordering did not eliminate them => they are inter-tree).
  std::uint32_t ordered_harden_after = 8;
};

/// What decide() told the submit path to do.
struct DecideResult {
  bool run_inline = false;
  bool probe = false;    // a parallel run issued from an elided state
  bool sample = true;    // time this body and feed the EWMA/score machine
  bool ordered = false;  // take the ordered-execution lane
};

/// State-transition report (feeds the demotion/promotion counters).
struct Outcome {
  bool demoted = false;   // moved one step toward inline
  bool promoted = false;  // moved one step toward parallel
  bool conflict = false;  // the transition was conflict-driven
};

/// Per-submit-site statistics and hysteresis state. All fields are relaxed
/// atomics: sites are updated from submit paths, pool workers and the
/// commit cascade concurrently, and the controller is a heuristic — a lost
/// increment or a stale EWMA read only delays a transition, never breaks
/// correctness (both decisions are always semantically valid).
struct alignas(util::kCacheLineSize) SiteStats {
  /// Timed-sample rate for hardened-inline bodies (power of two; see
  /// decide()). Probation and parallel runs are always timed.
  static constexpr std::uint32_t kInlineSamplePeriod = 8;

  /// Slot key (call-site address); claimed by CAS on first touch.
  std::atomic<const void*> key{nullptr};

  // --- accumulated signals ---
  std::atomic<std::uint64_t> ewma_body_ns{0};  // EWMA(α=1/8) body runtime
  std::atomic<std::uint64_t> ewma_join_ns{0};  // EWMA(α=1/8) join-wait time
  std::atomic<std::uint64_t> submits{0};       // decide() calls
  std::atomic<std::uint64_t> parallel_runs{0}; // timed sibling bodies
  std::atomic<std::uint64_t> inline_runs{0};   // timed elided bodies
                                               // (sampled once hardened)
  std::atomic<std::uint64_t> ordered_runs{0};  // timed ordered-lane bodies
  std::atomic<std::uint64_t> body_samples{0};  // timed body completions
  std::atomic<std::uint64_t> abort_total{0};
  /// Per-cause abort counts chargeable to this site (indexed by AbortCause).
  std::array<std::atomic<std::uint64_t>,
             static_cast<std::size_t>(obs::AbortCause::kCount)>
      aborts{};
  /// EWMA(α=1/8) of "a parallel run of this site ended in a chargeable
  /// conflict abort", in x1024 fixed point (0 = never, 1024 = always).
  /// Pumped by note_abort, decayed by clean parallel completions — ordered
  /// and inline runs never touch it (they are conflict-free by
  /// construction, so letting them decay it would insta-promote).
  std::atomic<std::uint32_t> conflict_ewma_x1024{0};
  /// Parallel-lane observations feeding the conflict EWMA (clean
  /// completions + chargeable aborts); gates conflict demotion the way
  /// min_samples gates profitability demotion.
  std::atomic<std::uint64_t> conflict_obs{0};
  /// EWMA(α=1/8) of the stripe width of top-level commits this site's
  /// futures rode in, x8 fixed point (8 = single-stripe). Scales the
  /// profitability bar: wide footprints serialize through the spine's
  /// multi-stripe path, so parallelism buys less.
  std::atomic<std::uint32_t> ewma_footprint_x8{0};

  // --- hysteresis state ---
  std::atomic<std::int32_t> score{0};  // saturating profitability score
  std::atomic<std::uint8_t> state{static_cast<std::uint8_t>(
      SiteState::kParallel)};
  std::atomic<std::uint32_t> probe_clock{0};  // inline decisions since probe
  std::atomic<std::uint32_t> ordered_conflicts{0};  // charges while kOrdered
  /// The site's current non-parallel residence was reached through the
  /// conflict path: re-probe on the denser ordered_reprobe_period cadence
  /// so a bursty-contention demotion is not a permanent blacklist.
  std::atomic<bool> conflict_demoted{false};

  SiteState site_state() const noexcept {
    return static_cast<SiteState>(state.load(std::memory_order_relaxed));
  }
  /// Conflict-rate estimate in x1024 fixed point (see conflict_ewma_x1024).
  std::uint32_t conflict_rate_x1024() const noexcept {
    return conflict_ewma_x1024.load(std::memory_order_relaxed);
  }

  /// O(1) submit fast path: no loops, no locks, a handful of relaxed
  /// atomic ops. Fresh sites start kParallel, so a program's first
  /// executions always behave exactly as pre-adaptive builds did.
  DecideResult decide(const Params& p) noexcept {
    submits.fetch_add(1, std::memory_order_relaxed);
    switch (site_state()) {
      case SiteState::kParallel:
        return {false, false};
      case SiteState::kOrdered: {
        // Ordered lane, with its own (denser) re-probe cadence: ordered
        // runs are sibling-conflict-free by construction, so only real
        // parallel probes can decay the conflict EWMA and prove a
        // contention burst over.
        const std::uint32_t c =
            probe_clock.fetch_add(1, std::memory_order_relaxed) + 1;
        if (p.ordered_reprobe_period != 0 && c >= p.ordered_reprobe_period) {
          probe_clock.store(0, std::memory_order_relaxed);
          return {false, true, true};
        }
        return {false, false, true, true};
      }
      case SiteState::kProbation:
      case SiteState::kInline: {
        // Periodic re-probe: one real parallel run every reprobe_period
        // elided decisions, so a site whose bodies grew (phase change) can
        // earn parallelism back instead of being locked inline forever.
        // Conflict-demoted residents use the denser ordered cadence — each
        // clean probe decays the conflict EWMA, so bursty contention cannot
        // blacklist a site for reprobe_period-scale stretches.
        const std::uint32_t period =
            conflict_demoted.load(std::memory_order_relaxed) &&
                    p.ordered_reprobe_period != 0
                ? p.ordered_reprobe_period
                : p.reprobe_period;
        const std::uint32_t c =
            probe_clock.fetch_add(1, std::memory_order_relaxed) + 1;
        if (period != 0 && c >= period) {
          probe_clock.store(0, std::memory_order_relaxed);
          return {false, true, true};
        }
        // Hardened-inline bodies are timed only 1-in-kInlineSamplePeriod:
        // per-run clock reads would tax exactly the tiny bodies elision is
        // meant to rescue, and a sparse sample is plenty for the score to
        // crawl back up when bodies grow. Probation keeps per-run sampling —
        // it must decide quickly which way to move.
        const bool sample = site_state() == SiteState::kProbation ||
                            (c & (kInlineSamplePeriod - 1)) == 0;
        return {true, false, sample};
      }
    }
    return {false, false};
  }

  /// Record one timed body completion (parallel sibling, ordered-lane, or
  /// inline elision) and advance the hysteresis machine. `eff_threshold_ns`
  /// is the load-scaled (and footprint-scaled) profitability bar
  /// (AdaptiveScheduler::effective_threshold_for; tests pass it directly).
  Outcome note_body_sample(const Params& p, std::uint64_t ns, RunKind kind,
                           std::uint64_t eff_threshold_ns) noexcept {
    (kind == RunKind::kParallel
         ? parallel_runs
         : kind == RunKind::kOrdered ? ordered_runs : inline_runs)
        .fetch_add(1, std::memory_order_relaxed);
    const std::uint64_t prev = ewma_body_ns.load(std::memory_order_relaxed);
    ewma_body_ns.store(prev == 0 ? ns : (prev * 7 + ns) / 8,
                       std::memory_order_relaxed);
    const std::uint64_t seen =
        body_samples.fetch_add(1, std::memory_order_relaxed) + 1;
    if (kind == RunKind::kParallel) {
      // Clean parallel completion: decay the conflict-rate estimate. An
      // ordered site promotes back to kParallel once its probes have
      // decayed the estimate under the promote bar (burst over).
      const std::uint32_t e0 =
          conflict_ewma_x1024.load(std::memory_order_relaxed);
      const std::uint32_t e = e0 - e0 / 8;
      conflict_ewma_x1024.store(e, std::memory_order_relaxed);
      conflict_obs.fetch_add(1, std::memory_order_relaxed);
      if (site_state() == SiteState::kOrdered &&
          e <= p.conflict_promote_x1024) {
        set_state(SiteState::kParallel);
        score.store(0, std::memory_order_relaxed);
        probe_clock.store(0, std::memory_order_relaxed);
        ordered_conflicts.store(0, std::memory_order_relaxed);
        conflict_demoted.store(false, std::memory_order_relaxed);
        Outcome out;
        out.promoted = true;
        out.conflict = true;
        return out;
      }
    }
    const bool profitable = ns >= eff_threshold_ns;
    return apply_signal(p, profitable ? +1 : -1, seen,
                        kind == RunKind::kParallel);
  }

  /// Record the continuation's wait inside TxFuture::get (EWMA only; the
  /// wait is informational — a long join means the sibling actually ran
  /// concurrently, a ~zero join means it was already done or elided).
  void note_join(std::uint64_t ns) noexcept {
    const std::uint64_t prev = ewma_join_ns.load(std::memory_order_relaxed);
    ewma_join_ns.store(prev == 0 ? ns : (prev * 7 + ns) / 8,
                       std::memory_order_relaxed);
  }

  /// Conflict-shaped causes chargeable to parallel execution: strong-order
  /// violations and read-validation races between siblings, and inter-tree
  /// write-write / top-level validation conflicts whose whole-tree restart
  /// threw away every speculated body.
  static bool conflict_cause(obs::AbortCause c) noexcept {
    return c == obs::AbortCause::kTreeOrder ||
           c == obs::AbortCause::kReadValidation ||
           c == obs::AbortCause::kWriteWrite;
  }

  /// Attribute one abort to this site. Conflict-shaped causes pump the
  /// conflict-rate EWMA and can demote on that signal ALONE — independent
  /// of the profitability score, which a stream of big-body "+1" samples
  /// would otherwise cancel (the fig5b zero-demotion bug): a site whose
  /// parallel futures mostly die to conflicts moves to the ordered lane
  /// even when every body looks profitable, and an ordered site whose
  /// charges persist (= inter-tree contention that ordering cannot fix)
  /// hardens to kInline. Conflict charges also carry the original double
  /// unprofitability penalty on the score (a wasted execution).
  Outcome note_abort(const Params& p, obs::AbortCause c) noexcept {
    aborts[static_cast<std::size_t>(c)].fetch_add(1,
                                                  std::memory_order_relaxed);
    abort_total.fetch_add(1, std::memory_order_relaxed);
    if (!conflict_cause(c)) return {};
    const std::uint32_t e0 =
        conflict_ewma_x1024.load(std::memory_order_relaxed);
    const std::uint32_t e = e0 + (1024 - e0) / 8;
    conflict_ewma_x1024.store(e, std::memory_order_relaxed);
    const std::uint64_t seen =
        conflict_obs.fetch_add(1, std::memory_order_relaxed) + 1;
    Outcome out;
    switch (site_state()) {
      case SiteState::kParallel:
        if (seen >= p.min_samples && e >= p.conflict_demote_x1024) {
          set_state(SiteState::kOrdered);
          score.store(0, std::memory_order_relaxed);
          probe_clock.store(0, std::memory_order_relaxed);
          ordered_conflicts.store(0, std::memory_order_relaxed);
          conflict_demoted.store(true, std::memory_order_relaxed);
          out.demoted = true;
          out.conflict = true;
          return out;
        }
        break;
      case SiteState::kOrdered: {
        const std::uint32_t n =
            ordered_conflicts.fetch_add(1, std::memory_order_relaxed) + 1;
        if (p.ordered_harden_after != 0 && n >= p.ordered_harden_after) {
          set_state(SiteState::kInline);
          score.store(0, std::memory_order_relaxed);
          probe_clock.store(0, std::memory_order_relaxed);
          out.demoted = true;
          out.conflict = true;
        }
        return out;
      }
      case SiteState::kProbation:
      case SiteState::kInline:
        break;
    }
    return apply_signal(p, -2, body_samples.load(std::memory_order_relaxed),
                        true);
  }

  /// Attribute the stripe width of one top-level commit this site's
  /// futures rode in (TxTree::do_top_commit). EWMA only — consumed by
  /// AdaptiveScheduler::effective_threshold_for.
  void note_footprint(unsigned width) noexcept {
    const std::uint32_t w8 = static_cast<std::uint32_t>(width) * 8;
    const std::uint32_t prev =
        ewma_footprint_x8.load(std::memory_order_relaxed);
    ewma_footprint_x8.store(prev == 0 ? w8 : (prev * 7 + w8) / 8,
                            std::memory_order_relaxed);
  }

 private:
  /// Shared transition logic: clamp the score, then move between states.
  /// `parallel_sample` marks signals produced by a real parallel run (an
  /// inline site can only be promoted by a probe that proved itself, or by
  /// its score crawling back up as inline bodies grow).
  Outcome apply_signal(const Params& p, int delta, std::uint64_t samples_seen,
                       bool parallel_sample) noexcept {
    Outcome out;
    const int lo = -static_cast<int>(p.harden_after);
    const int hi = static_cast<int>(p.promote_after);
    int s = score.load(std::memory_order_relaxed) + delta;
    if (s < lo) s = lo;
    if (s > hi) s = hi;
    switch (site_state()) {
      case SiteState::kParallel:
        if (samples_seen >= p.min_samples &&
            s <= -static_cast<int>(p.demote_after)) {
          set_state(SiteState::kProbation);
          s = 0;
          out.demoted = true;
        }
        break;
      case SiteState::kProbation:
        if (s >= static_cast<int>(p.promote_after)) {
          set_state(SiteState::kParallel);
          s = 0;
          out.promoted = true;
          conflict_demoted.store(false, std::memory_order_relaxed);
        } else if (s <= -static_cast<int>(p.harden_after)) {
          set_state(SiteState::kInline);
          s = 0;
          out.demoted = true;
        }
        break;
      case SiteState::kOrdered:
        // Profitability can still push an ordered site the rest of the way
        // inline (bodies shrank under the bar); promotion out of kOrdered
        // is conflict-governed (note_body_sample's clean-probe path).
        if (s <= -static_cast<int>(p.harden_after)) {
          set_state(SiteState::kInline);
          s = 0;
          out.demoted = true;
        }
        break;
      case SiteState::kInline:
        // A contended site stays put even when its probe looked profitable:
        // promotion is gated on the conflict estimate having decayed under
        // the demote bar, or re-promoting would just re-enter the
        // demote-on-first-charge cycle.
        if (((parallel_sample && delta > 0) ||
             s >= static_cast<int>(p.promote_after)) &&
            conflict_ewma_x1024.load(std::memory_order_relaxed) <
                p.conflict_demote_x1024) {
          set_state(SiteState::kProbation);
          s = 0;
          out.promoted = true;
        }
        break;
    }
    score.store(s, std::memory_order_relaxed);
    return out;
  }

  void set_state(SiteState st) noexcept {
    state.store(static_cast<std::uint8_t>(st), std::memory_order_relaxed);
  }
};

/// The per-Runtime controller: owns the site table, reads scheduler load
/// from the thread pool, exports core.adaptive.* metrics, and applies
/// Config::scheduling. Thread-safe; every method is lock-free.
class AdaptiveScheduler {
 public:
  /// Site-table geometry. 256 slots comfortably covers real programs (one
  /// slot per static submit location); on (unlikely) saturation colliding
  /// sites share a slot — blended statistics, still-correct decisions.
  static constexpr std::size_t kTableSize = 256;
  static constexpr std::size_t kProbeLimit = 8;

  AdaptiveScheduler(const Config& cfg, sched::ThreadPool& pool);

  AdaptiveScheduler(const AdaptiveScheduler&) = delete;
  AdaptiveScheduler& operator=(const AdaptiveScheduler&) = delete;

  /// What a decide() call told one submit to do.
  struct Decision {
    bool run_inline = false;
    bool probe = false;
    bool sample = true;         // time the body (see SiteStats::decide)
    bool ordered = false;       // ordered-execution lane (kOrdered /
                                // SchedulingMode::kAlwaysOrdered)
    SiteStats* site = nullptr;  // null in the fixed (non-adaptive) modes
  };

  /// The submit fast path: map the call-site key to its SiteStats slot and
  /// run the O(1) state machine (fixed modes short-circuit). Emits an
  /// adaptive.decide trace instant and counts the decision; the
  /// core.adaptive.decide failpoint, when armed, flips the verdict — any
  /// decision sequence is semantically valid, which is exactly what the
  /// chaos tests assert.
  Decision decide(const void* site_key) noexcept;

  /// Feedback: one timed body completion at `site` (no-op for null).
  void note_body_ns(SiteStats* site, std::uint64_t ns, RunKind kind) noexcept;
  /// Feedback: continuation join-wait time (no-op for null).
  void note_join_ns(SiteStats* site, std::uint64_t ns) noexcept {
    if (site != nullptr) site->note_join(ns);
  }
  /// Feedback: abort chargeable to `site` (called from the commit cascade
  /// under the tree mutex and from the atomically() driver after a
  /// conflict-shaped tree failure — O(1), atomics only; no-op for null).
  void note_abort(SiteStats* site, obs::AbortCause c) noexcept;
  /// Feedback: one top-level commit with stripe footprint `width` whose
  /// tree contained futures from `sites` (TxTree::do_top_commit). Records
  /// the core.adaptive.footprint_* metrics and each site's footprint EWMA.
  void note_commit_footprint(const std::vector<SiteStats*>& sites,
                             unsigned width) noexcept;

  SchedulingMode mode() const noexcept { return mode_; }
  const Params& params() const noexcept { return params_; }

  /// Profitability bar for this instant: the configured threshold scaled
  /// up under pool backlog (deep queue / no parked worker means spawning
  /// buys little and costs contention).
  std::uint64_t effective_threshold() const noexcept;
  /// effective_threshold() additionally scaled by `site`'s commit-footprint
  /// EWMA (capped at 4x): a site whose commits span W stripes serializes
  /// through the multi-stripe path, so its bodies must be ~W times bigger
  /// to justify parallel activation — the footprint-narrowing bias.
  std::uint64_t effective_threshold_for(const SiteStats* site) const noexcept;

  /// Footprint-attribution aggregates (mirrors core.adaptive.footprint_*;
  /// read by txf_server's periodic status so soak runs show footprint
  /// drift).
  std::uint64_t footprint_commits() const noexcept {
    return footprint_width_.count();
  }
  std::uint64_t footprint_width_sum() const noexcept {
    return footprint_width_.sum();
  }
  std::uint64_t footprint_width_bucket(std::size_t i) const noexcept {
    return footprint_width_.bucket_count(i);
  }
  std::uint64_t footprint_single() const noexcept {
    return footprint_single_.value();
  }
  std::uint64_t footprint_multi() const noexcept {
    return footprint_multi_.value();
  }

  /// Slot lookup (claims on first touch). Exposed for tests.
  SiteStats* site_for(const void* key) noexcept;

  /// Claimed slots (mirrors the core.adaptive.sites gauge).
  std::uint64_t site_count() const noexcept {
    return static_cast<std::uint64_t>(sites_.load());
  }

 private:
  SchedulingMode mode_;
  Params params_;
  sched::ThreadPool* pool_;
  std::unique_ptr<SiteStats[]> table_;

  void count_outcome(const Outcome& out) noexcept {
    if (out.demoted) {
      demotions_.add();
      if (out.conflict) conflict_demotions_.add();
    }
    if (out.promoted) promotions_.add();
  }

  obs::Counter parallel_decisions_;
  obs::Counter inline_decisions_;
  obs::Counter ordered_decisions_;
  obs::Counter probes_;
  obs::Counter demotions_;
  obs::Counter conflict_demotions_;  // subset of demotions_ (conflict path)
  obs::Counter promotions_;
  obs::Counter footprint_single_;    // attributed single-stripe commits
  obs::Counter footprint_multi_;     // attributed multi-stripe commits
  obs::Histogram footprint_width_;   // stripe width per attributed commit
  obs::Gauge sites_;
  obs::Registration reg_;  // "core.adaptive.*" in the MetricsRegistry
};

}  // namespace txf::core::adaptive

/// Expands to a stable, unique submit-site key for TxCtx::submit_at —
/// use when the caller's return address is not a reliable site identity
/// (e.g. one dispatch helper submitting on behalf of many logical sites).
#define TXF_SUBMIT_SITE                               \
  ([]() noexcept -> const void* {                     \
    static const char txf_submit_site_tag = 0;        \
    return static_cast<const void*>(&txf_submit_site_tag); \
  }())
