// Futures as channels between top-level transactions (paper Fig. 2).
//
// A producer transaction submits a transactional future computing a
// summary of shared state and passes the handle to an independent consumer
// thread, which evaluates it outside the producing transaction. Evaluation
// blocks until the future commits; the reference can be shipped anywhere
// (it is garbage-collected with its last handle, like a plain future).
//
// Build & run:   ./examples/pipeline_channel
#include <atomic>
#include <cstdio>
#include <deque>
#include <mutex>
#include <optional>
#include <thread>

#include "core/api.hpp"

using txf::core::atomically;
using txf::core::Runtime;
using txf::core::TxCtx;
using txf::core::TxFuture;
using txf::stm::VBox;

namespace {

/// A tiny thread-safe mailbox for shipping future handles between threads.
template <typename T>
class Mailbox {
 public:
  void send(T value) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      queue_.push_back(std::move(value));
    }
    cv_.notify_one();
  }
  std::optional<T> receive_or_eof() {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [&] { return !queue_.empty() || eof_; });
    if (queue_.empty()) return std::nullopt;
    T v = std::move(queue_.front());
    queue_.pop_front();
    return v;
  }
  void close() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      eof_ = true;
    }
    cv_.notify_all();
  }

 private:
  std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<T> queue_;
  bool eof_ = false;
};

}  // namespace

int main() {
  Runtime rt;
  constexpr int kSensors = 8;
  std::deque<VBox<long>> sensors;
  for (int i = 0; i < kSensors; ++i) sensors.emplace_back(0L);

  Mailbox<TxFuture<long>> channel;

  // Consumer: evaluates summaries produced inside the producer's
  // transactions, from outside any transactional context.
  std::thread consumer([&] {
    long count = 0;
    long last = 0;
    while (auto f = channel.receive_or_eof()) {
      last = f->get();  // blocks until the future committed in its tree
      ++count;
    }
    std::printf("consumer evaluated %ld summaries; last sum = %ld\n", count,
                last);
  });

  // Producer: each round bumps the sensors and, in the same transaction,
  // spawns a future summarizing them. The summary is serialized at its
  // submission point, so it reflects exactly this round's updates.
  for (int round = 1; round <= 5; ++round) {
    atomically(rt, [&](TxCtx& ctx) {
      for (int i = 0; i < kSensors; ++i)
        sensors[i].put(ctx, sensors[i].get(ctx) + round);
      auto summary = ctx.submit([&](TxCtx& inner) {
        long sum = 0;
        for (auto& s : sensors) sum += s.get(inner);
        return sum;
      });
      channel.send(summary);
      summary.get(ctx);  // also evaluated locally before we commit
    });
  }
  channel.close();
  consumer.join();

  long expected = 0;
  for (auto& s : sensors) expected += s.peek_committed();
  std::printf("final committed sensor sum: %ld\n", expected);
  return 0;
}
