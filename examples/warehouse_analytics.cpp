// Warehouse analytics: long read transactions racing an OLTP stream —
// the paper's TPC-C adaptation (§V).
//
// OLTP threads hammer NewOrder/Payment transactions while an analyst
// repeatedly computes "the total amount of money raised by the warehouse".
// The analytics transaction scans every customer — far too slow serially
// to keep up with the write stream without aborting constantly — so its
// scan cycle is split across transactional futures. Multi-versioning plus
// strong ordering gives the analyst a consistent total every time.
//
// Build & run:   ./examples/warehouse_analytics [seconds]
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <thread>

#include "workloads/tpcc/tpcc.hpp"

using txf::core::Config;
using txf::core::Runtime;
using txf::util::Xoshiro256;
namespace tpcc = txf::workloads::tpcc;

int main(int argc, char** argv) {
  const int seconds = argc > 1 ? std::atoi(argv[1]) : 2;

  Runtime rt(Config{.pool_threads = 4});
  tpcc::TpccParams params;
  params.customers_per_district = 128;
  params.items = 512;
  params.jobs = 4;  // analytics scan splits 4 ways
  tpcc::TpccDB db(params);
  Xoshiro256 seed(7);
  db.populate(rt, seed);

  std::atomic<bool> stop{false};
  std::atomic<long> oltp_done{0};

  std::thread order_clerk([&] {
    Xoshiro256 rng(11);
    while (!stop.load()) {
      db.new_order(rt, rng);
      oltp_done.fetch_add(1);
    }
  });
  std::thread cashier([&] {
    Xoshiro256 rng(13);
    while (!stop.load()) {
      db.payment(rt, rng);
      oltp_done.fetch_add(1);
    }
  });

  Xoshiro256 rng(17);
  long scans = 0;
  long last_total = 0;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(seconds);
  while (std::chrono::steady_clock::now() < deadline) {
    last_total = db.warehouse_analytics(rt, rng);
    ++scans;
  }
  stop.store(true);
  order_clerk.join();
  cashier.join();

  std::printf("analyst completed %ld consistent warehouse scans\n", scans);
  std::printf("last reported warehouse total: %ld\n", last_total);
  std::printf("OLTP transactions meanwhile: %ld (orders: %ld)\n",
              oltp_done.load(), db.committed_orders());
  const bool ok = db.audit(rt);
  std::printf("consistency audit: %s\n", ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}
