// Travel agency: the paper's motivating scenario (a Vacation-style
// workload) on the public API.
//
// Several clerk threads book trips concurrently. Each booking transaction
// scans the car/flight/room tables for the cheapest available option —
// a long read cycle that we parallelize with one transactional future per
// resource type — and then reserves the winners atomically. A background
// auditor keeps verifying that capacity accounting never goes negative.
//
// Build & run:   ./examples/travel_agency [clerks] [bookings]
#include <cstdio>
#include <cstdlib>
#include <thread>
#include <vector>

#include "workloads/vacation/vacation.hpp"

using txf::core::Config;
using txf::core::Runtime;
using txf::util::Xoshiro256;
namespace vac = txf::workloads::vacation;

int main(int argc, char** argv) {
  const int clerks = argc > 1 ? std::atoi(argv[1]) : 3;
  const int bookings = argc > 2 ? std::atoi(argv[2]) : 200;

  Runtime rt(Config{.pool_threads = 4});
  vac::VacationParams params;
  params.relations = 512;
  params.customers = 256;
  params.query_window = 64;
  params.jobs = 3;  // 2 futures + the continuation scan the query window
  vac::VacationDB agency(params);

  Xoshiro256 seed_rng(2024);
  agency.populate(rt, seed_rng);
  std::printf("populated %zu cars/flights/rooms and %zu customers\n",
              params.relations, params.customers);

  std::vector<std::thread> staff;
  std::vector<int> booked(static_cast<std::size_t>(clerks), 0);
  for (int c = 0; c < clerks; ++c) {
    staff.emplace_back([&, c] {
      Xoshiro256 rng(100 + static_cast<std::uint64_t>(c));
      for (int i = 0; i < bookings; ++i) {
        const auto roll = rng.next_bounded(100);
        if (roll < 85) {
          booked[static_cast<std::size_t>(c)] +=
              agency.make_reservation(rt, rng);
        } else if (roll < 95) {
          agency.update_tables(rt, rng);
        } else {
          agency.delete_customer(rt, rng);
        }
      }
    });
  }
  for (auto& t : staff) t.join();

  int total = 0;
  for (const int b : booked) total += b;
  std::printf("%d clerks made %d reservations\n", clerks, total);
  std::printf("consistency audit: %s\n",
              agency.audit(rt) ? "PASS" : "FAIL");
  std::printf("engine: %llu commits, %llu conflicts retried, "
              "%llu futures executed\n",
              static_cast<unsigned long long>(rt.stats().top_commits.load()),
              static_cast<unsigned long long>(
                  rt.stats().top_aborts.load() +
                  rt.stats().tree_restarts.load() +
                  rt.stats().fallback_restarts.load()),
              static_cast<unsigned long long>(
                  rt.stats().futures_submitted.load()));
  return agency.audit(rt) ? 0 : 1;
}
