// Quickstart: transactional futures in ten minutes.
//
// Build & run:   ./examples/quickstart
//
// The example walks through the core API: versioned boxes, atomic blocks,
// submitting transactional futures, evaluating them, and what strong
// ordering semantics guarantees about the result.
#include <cstdio>

#include "core/api.hpp"

using txf::core::atomically;
using txf::core::Runtime;
using txf::core::TxCtx;
using txf::stm::VBox;

int main() {
  // One Runtime per process: it owns the STM state and the thread pool
  // that executes futures.
  Runtime rt;

  // Shared state lives in versioned boxes. Reads and writes go through a
  // transactional context.
  VBox<long> checking(900);
  VBox<long> savings(100);

  // 1. A plain atomic block — no futures yet.
  atomically(rt, [&](TxCtx& ctx) {
    checking.put(ctx, checking.get(ctx) - 50);
    savings.put(ctx, savings.get(ctx) + 50);
  });
  std::printf("after transfer: checking=%ld savings=%ld\n",
              checking.peek_committed(), savings.peek_committed());

  // 2. Intra-transaction parallelism. The audit runs as a transactional
  //    future — a child sub-transaction scheduled on the pool — while the
  //    same transaction keeps mutating the accounts in its continuation.
  //
  //    Strong ordering semantics: the future is serialized at its
  //    submission point. It therefore must NOT see the withdrawal below,
  //    exactly as if it had been called synchronously right here.
  const long audited = atomically(rt, [&](TxCtx& ctx) {
    auto audit = ctx.submit([&](TxCtx& inner) {
      return checking.get(inner) + savings.get(inner);
    });

    checking.put(ctx, checking.get(ctx) - 200);  // continuation, in parallel

    const long total = audit.get(ctx);  // evaluate: blocks until committed
    std::printf("audit inside the transaction saw total=%ld\n", total);
    return total;
  });
  std::printf("audited total: %ld (the pre-withdrawal 1000)\n", audited);
  std::printf("committed state: checking=%ld savings=%ld\n",
              checking.peek_committed(), savings.peek_committed());

  // 3. Futures nest arbitrarily, forming a transaction tree; every
  //    execution is equivalent to running the futures synchronously at
  //    their submit points (pre-order of the tree).
  const long sum = atomically(rt, [&](TxCtx& ctx) {
    auto left = ctx.submit([&](TxCtx& a) {
      auto leaf = a.submit([&](TxCtx& b) { return savings.get(b); });
      return leaf.get(a) + 1;
    });
    auto right = ctx.submit([&](TxCtx& c) { return checking.get(c); });
    return left.get(ctx) + right.get(ctx);
  });
  std::printf("nested futures computed %ld\n", sum);

  // 4. Conflicts are handled for you: this read-modify-write retries until
  //    it commits atomically, futures included.
  atomically(rt, [&](TxCtx& ctx) {
    auto bonus = ctx.submit([](TxCtx&) { return 25L; });
    savings.put(ctx, savings.get(ctx) + bonus.get(ctx));
  });
  std::printf("final savings: %ld\n", savings.peek_committed());
  return 0;
}
