// Range-scan bench for the transactional B+-tree (containers/tx_btree.hpp).
//
// Phase A — scan sweep: scans/s over a width x threads x scheduling-mode
// grid. Workers scan random windows of the keyspace; every Nth operation is
// a clustered batch of read-modify-write puts instead, so scans race real
// writers and the per-run abort-cause breakdown (env abort accounting) is
// populated. Each grid point runs on a fresh Runtime, so counters are
// per-run without global-registry deltas. The interesting comparisons:
//   * parallel vs inline at the same (width, threads): the cost/benefit of
//     future-per-root-child subtree scans;
//   * adaptive vs the best fixed mode: the per-site controller should land
//     within a few percent of whichever fixed policy wins at that point.
//
// Phase B — leaf-buffering footprint ablation: identical clustered
// batch-put traffic against the TxBTree (leaf-centric write buffering: a
// batch coalesces into a handful of leaf boxes) and a TxMap (one key/value
// box pair per key), comparing the commit-spine stripe footprint — the
// multi-stripe commit share and the mean footprint width in stripes. This
// is the measurable form of the §5g single-stripe-footprint argument.
//
// Flags: --widths a,b,c --threads a,b,c --ms N --keys N --put-every N
//        --batch N --stripes N --json FILE
#include <atomic>
#include <cstdio>
#include <cstring>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "containers/tx_btree.hpp"
#include "containers/tx_map.hpp"
#include "core/api.hpp"
#include "obs/metrics.hpp"
#include "util/timing.hpp"
#include "util/xoshiro.hpp"

using txf::containers::TxBTree;
using txf::containers::TxMap;
using txf::util::Xoshiro256;

namespace {

const char* mode_name(txf::core::SchedulingMode m) {
  switch (m) {
    case txf::core::SchedulingMode::kAlwaysParallel: return "parallel";
    case txf::core::SchedulingMode::kAlwaysInline: return "inline";
    case txf::core::SchedulingMode::kAlwaysOrdered: return "ordered";
    case txf::core::SchedulingMode::kAdaptive: return "adaptive";
  }
  return "?";
}

struct CauseCount {
  const char* name;
  std::uint64_t n;
};

struct ScanRow {
  std::uint64_t width;
  unsigned threads;
  const char* mode;
  double scans_per_s = 0;
  double keys_per_s = 0;
  std::uint64_t commits = 0;
  std::uint64_t attempt_aborts = 0;
  std::vector<CauseCount> causes;  // nonzero causes only
};

struct FootprintRow {
  const char* container;
  std::uint64_t commits = 0;
  std::uint64_t multi_commits = 0;
  double multi_share = 0;
  double mean_width = 0;  // stripes per commit, single-stripe commits = 1
};

/// (count, sum) of a registry histogram right now; rows take deltas.
std::pair<std::uint64_t, std::uint64_t> histogram_now(const char* name) {
  for (const auto& m : txf::obs::MetricsRegistry::instance().snapshot_values())
    if (m.name == name) return {static_cast<std::uint64_t>(m.value), m.sum};
  return {0, 0};
}

void preload(txf::core::Runtime& rt, TxBTree& tree, std::uint64_t keys) {
  for (std::uint64_t base = 0; base < keys; base += 1024) {
    txf::core::atomically(rt, [&](txf::core::TxCtx& ctx) {
      const std::uint64_t end = std::min(base + 1024, keys);
      for (std::uint64_t k = base; k < end; ++k) tree.put(ctx, k, k + 1);
      return 0;
    });
  }
}

ScanRow run_scan(std::uint64_t width, unsigned threads,
                 txf::core::SchedulingMode mode, int ms, std::uint64_t keys,
                 unsigned put_every, unsigned batch, unsigned stripes) {
  txf::core::Config cfg;
  cfg.pool_threads = 2;
  cfg.scheduling = mode;
  cfg.commit_stripes = stripes;
  txf::core::Runtime rt(cfg);
  TxBTree tree;
  preload(rt, tree, keys);

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> scans{0};
  std::atomic<std::uint64_t> scanned{0};
  std::vector<std::thread> workers;
  const auto t0 = txf::util::now_ns();
  for (unsigned w = 0; w < threads; ++w) {
    workers.emplace_back([&, w] {
      Xoshiro256 rng(1234 + w);
      std::uint64_t ops = 0;
      while (!stop.load(std::memory_order_acquire)) {
        if (put_every != 0 && ++ops % put_every == 0) {
          // Clustered writer batch: RMW `batch` consecutive keys so scans
          // crossing the cluster see a consistent increment or abort.
          const std::uint64_t base = rng.next_bounded(keys - batch);
          txf::core::atomically(rt, [&](txf::core::TxCtx& ctx) {
            for (std::uint64_t k = base; k < base + batch; ++k) {
              std::uint64_t v = 0;
              tree.get(ctx, k, v);
              tree.put(ctx, k, v + 1);
            }
            return 0;
          });
          continue;
        }
        const std::uint64_t lo = rng.next_bounded(keys - width);
        const std::size_t n = txf::core::atomically(
            rt, [&](txf::core::TxCtx& ctx) {
              std::uint64_t sum = 0;
              return tree.scan(
                  ctx, lo, lo + width,
                  [&](std::uint64_t, std::uint64_t v) { sum += v; },
                  TXF_SUBMIT_SITE);
            });
        scans.fetch_add(1, std::memory_order_relaxed);
        scanned.fetch_add(n, std::memory_order_relaxed);
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(ms));
  stop.store(true, std::memory_order_release);
  for (auto& t : workers) t.join();
  const double secs = static_cast<double>(txf::util::now_ns() - t0) * 1e-9;

  ScanRow row{width, threads, mode_name(mode)};
  row.scans_per_s = static_cast<double>(scans.load()) / secs;
  row.keys_per_s = static_cast<double>(scanned.load()) / secs;
  const auto& acc = rt.env().abort_accounting();
  row.commits = acc.tx_commits.value();
  row.attempt_aborts = acc.attempt_aborts.value();
  for (std::size_t i = 0;
       i < static_cast<std::size_t>(txf::obs::AbortCause::kCount); ++i) {
    const auto c = static_cast<txf::obs::AbortCause>(i);
    if (const std::uint64_t n = acc.of(c).value(); n != 0)
      row.causes.push_back({txf::obs::abort_cause_name(c), n});
  }
  return row;
}

std::vector<std::uint64_t> parse_list(const char* flag, const char* v) {
  std::vector<std::uint64_t> out;
  std::stringstream ss(v);
  std::string tok;
  while (std::getline(ss, tok, ',')) {
    try {
      std::size_t used = 0;
      const auto n = std::stoull(tok, &used);
      if (used != tok.size()) throw std::invalid_argument(tok);
      out.push_back(n);
    } catch (const std::exception&) {
      std::fprintf(stderr, "error: %s wants a comma-separated int list\n",
                   flag);
      std::exit(2);
    }
  }
  if (out.empty()) {
    std::fprintf(stderr, "error: %s is empty\n", flag);
    std::exit(2);
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::uint64_t> widths{64, 1024, 8192};
  std::vector<std::uint64_t> threads{1, 2};
  int ms = 200;
  std::uint64_t keys = 1u << 16;
  unsigned put_every = 8;
  unsigned batch = 64;
  unsigned stripes = 8;
  std::uint64_t footprint_txns = 2000;
  std::string json_path;

  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", a);
        std::exit(2);
      }
      return argv[++i];
    };
    if (std::strcmp(a, "--widths") == 0) {
      widths = parse_list(a, next());
    } else if (std::strcmp(a, "--threads") == 0) {
      threads = parse_list(a, next());
    } else if (std::strcmp(a, "--ms") == 0) {
      ms = std::atoi(next());
    } else if (std::strcmp(a, "--keys") == 0) {
      keys = std::strtoull(next(), nullptr, 10);
    } else if (std::strcmp(a, "--put-every") == 0) {
      put_every = static_cast<unsigned>(std::atoi(next()));
    } else if (std::strcmp(a, "--batch") == 0) {
      batch = static_cast<unsigned>(std::atoi(next()));
    } else if (std::strcmp(a, "--stripes") == 0) {
      stripes = static_cast<unsigned>(std::atoi(next()));
    } else if (std::strcmp(a, "--footprint-txns") == 0) {
      footprint_txns = std::strtoull(next(), nullptr, 10);
    } else if (std::strcmp(a, "--json") == 0) {
      json_path = next();
    } else {
      std::fprintf(stderr, "unknown flag %s\n", a);
      return 2;
    }
  }

  const txf::core::SchedulingMode modes[] = {
      txf::core::SchedulingMode::kAlwaysInline,
      txf::core::SchedulingMode::kAlwaysParallel,
      txf::core::SchedulingMode::kAdaptive,
  };

  std::vector<ScanRow> rows;
  for (std::uint64_t width : widths) {
    for (std::uint64_t t : threads) {
      for (auto mode : modes) {
        rows.push_back(run_scan(width, static_cast<unsigned>(t), mode, ms,
                                keys, put_every, batch, stripes));
        const ScanRow& r = rows.back();
        std::printf(
            "width=%llu threads=%u mode=%s scans/s=%.0f keys/s=%.0f "
            "commits=%llu attempt_aborts=%llu\n",
            static_cast<unsigned long long>(r.width), r.threads, r.mode,
            r.scans_per_s, r.keys_per_s,
            static_cast<unsigned long long>(r.commits),
            static_cast<unsigned long long>(r.attempt_aborts));
      }
    }
  }

  // Phase B. Same clustered batches; only the container changes.
  FootprintRow tree_fp;
  {
    txf::core::Config cfg;
    cfg.pool_threads = 2;
    cfg.commit_stripes = stripes;
    txf::core::Runtime rt(cfg);
    TxBTree tree;
    preload(rt, tree, keys);
    const auto before = histogram_now("stm.shard.multi_footprint");
    const std::uint64_t base_commits =
        rt.env().abort_accounting().tx_commits.value();
    const std::uint64_t base_multi = rt.env().queue().multi_commits();
    Xoshiro256 rng(99);
    for (std::uint64_t i = 0; i < footprint_txns; ++i) {
      const std::uint64_t base = rng.next_bounded(keys - batch);
      txf::core::atomically(rt, [&](txf::core::TxCtx& ctx) {
        for (std::uint64_t k = base; k < base + batch; ++k)
          tree.put(ctx, k, k ^ i);
        return 0;
      });
    }
    const auto after = histogram_now("stm.shard.multi_footprint");
    tree_fp = FootprintRow{"tx_btree"};
    tree_fp.commits =
        rt.env().abort_accounting().tx_commits.value() - base_commits;
    tree_fp.multi_commits = rt.env().queue().multi_commits() - base_multi;
    const std::uint64_t widths_sum = after.second - before.second;
    const std::uint64_t single = tree_fp.commits - tree_fp.multi_commits;
    tree_fp.multi_share =
        static_cast<double>(tree_fp.multi_commits) /
        static_cast<double>(tree_fp.commits ? tree_fp.commits : 1);
    tree_fp.mean_width =
        static_cast<double>(single + widths_sum) /
        static_cast<double>(tree_fp.commits ? tree_fp.commits : 1);
  }
  FootprintRow map_fp;
  {
    txf::core::Config cfg;
    cfg.pool_threads = 2;
    cfg.commit_stripes = stripes;
    txf::core::Runtime rt(cfg);
    TxMap map(keys * 2);
    for (std::uint64_t base = 0; base < keys; base += 1024) {
      txf::core::atomically(rt, [&](txf::core::TxCtx& ctx) {
        const std::uint64_t end = std::min(base + 1024, keys);
        for (std::uint64_t k = base; k < end; ++k) map.put(ctx, k, k + 1);
        return 0;
      });
    }
    const auto before = histogram_now("stm.shard.multi_footprint");
    const std::uint64_t base_commits =
        rt.env().abort_accounting().tx_commits.value();
    const std::uint64_t base_multi = rt.env().queue().multi_commits();
    Xoshiro256 rng(99);
    for (std::uint64_t i = 0; i < footprint_txns; ++i) {
      const std::uint64_t base = rng.next_bounded(keys - batch);
      txf::core::atomically(rt, [&](txf::core::TxCtx& ctx) {
        for (std::uint64_t k = base; k < base + batch; ++k)
          map.put(ctx, k, k ^ i);
        return 0;
      });
    }
    const auto after = histogram_now("stm.shard.multi_footprint");
    map_fp = FootprintRow{"tx_map"};
    map_fp.commits =
        rt.env().abort_accounting().tx_commits.value() - base_commits;
    map_fp.multi_commits = rt.env().queue().multi_commits() - base_multi;
    const std::uint64_t widths_sum = after.second - before.second;
    const std::uint64_t single = map_fp.commits - map_fp.multi_commits;
    map_fp.multi_share =
        static_cast<double>(map_fp.multi_commits) /
        static_cast<double>(map_fp.commits ? map_fp.commits : 1);
    map_fp.mean_width =
        static_cast<double>(single + widths_sum) /
        static_cast<double>(map_fp.commits ? map_fp.commits : 1);
  }

  std::printf(
      "footprint: tx_btree mean_width=%.2f multi_share=%.3f | "
      "tx_map mean_width=%.2f multi_share=%.3f\n",
      tree_fp.mean_width, tree_fp.multi_share, map_fp.mean_width,
      map_fp.multi_share);

  if (!json_path.empty()) {
    std::ostringstream os;
    os << "{\"bench\": \"range_scan\", \"ms\": " << ms
       << ", \"keys\": " << keys << ", \"put_every\": " << put_every
       << ", \"batch\": " << batch << ", \"stripes\": " << stripes
       << ", \"rows\": [";
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const ScanRow& r = rows[i];
      if (i != 0) os << ", ";
      os << "{\"width\": " << r.width << ", \"threads\": " << r.threads
         << ", \"mode\": \"" << r.mode << "\", \"scans_per_s\": "
         << r.scans_per_s << ", \"keys_per_s\": " << r.keys_per_s
         << ", \"commits\": " << r.commits
         << ", \"attempt_aborts\": " << r.attempt_aborts << ", \"causes\": {";
      for (std::size_t c = 0; c < r.causes.size(); ++c)
        os << (c != 0 ? ", " : "") << "\"" << r.causes[c].name
           << "\": " << r.causes[c].n;
      os << "}}";
    }
    os << "], \"footprint\": [";
    const FootprintRow* fps[] = {&tree_fp, &map_fp};
    for (std::size_t i = 0; i < 2; ++i) {
      const FootprintRow& f = *fps[i];
      if (i != 0) os << ", ";
      os << "{\"container\": \"" << f.container
         << "\", \"commits\": " << f.commits
         << ", \"multi_commits\": " << f.multi_commits
         << ", \"multi_share\": " << f.multi_share
         << ", \"mean_width\": " << f.mean_width << "}";
    }
    os << "]}\n";
    std::FILE* f = std::fopen(json_path.c_str(), "w");
    if (f == nullptr) {
      std::perror("fopen");
      return 1;
    }
    std::fputs(os.str().c_str(), f);
    std::fclose(f);
  }
  return 0;
}
