// Ablation A — eager (in-VBox tentative lists, tree-lock at the head) vs
// lazy (tree-private store, conflicts surface at top-level validation)
// write modes, on the contention-prone synthetic workload of Fig. 5b.
//
// Eager detection aborts doomed trees early but pays lock transfers on hot
// boxes; lazy runs optimistically to the end. The paper's design is eager.
//
// Flags: --total N --ms N --len N --array N
#include <cstdio>

#include "workloads/common/driver.hpp"
#include "workloads/synthetic/synthetic.hpp"

using txf::core::Config;
using txf::core::Runtime;
using txf::core::WriteMode;
using txf::util::Xoshiro256;
using namespace txf::workloads;
namespace synth = txf::workloads::synthetic;

int main(int argc, char** argv) {
  const Args args(argc, argv);
  const auto total = static_cast<std::size_t>(args.get_int("total", 8));
  const int ms = static_cast<int>(args.get_int("ms", 400));
  const auto array_size =
      static_cast<std::size_t>(args.get_int("array", 100000));
  synth::UpdateParams p;
  p.prefix_len = static_cast<std::size_t>(args.get_int("len", 500));
  p.iter = 100;
  p.jobs = 2;

  std::printf(
      "# Ablation A: eager vs lazy tentative writes, contention workload\n"
      "# (%zu top-level txns x 2-way futures, prefix=%zu, window=%dms)\n",
      total / 2, p.prefix_len, ms);

  print_header({"mode", "tx/s", "abort_rate", "fallbacks", "reexecs"});
  for (const WriteMode mode : {WriteMode::kEager, WriteMode::kLazy}) {
    Config cfg;
    cfg.pool_threads = total / 2;
    cfg.write_mode = mode;
    Runtime rt(cfg);
    // Fresh array per runtime (VBox<->StmEnv lifetime contract).
    synth::SyntheticArray array(array_size);
    const RunResult r = run_for(
        rt, total / 2, ms,
        [&](std::size_t w, const std::function<bool()>& keep,
            WorkerMetrics& m) {
          Xoshiro256 rng(7000 + w);
          while (keep()) {
            synth::run_update_tx(rt, array, rng, p);
            ++m.transactions;
          }
        });
    print_row({mode == WriteMode::kEager ? "eager" : "lazy",
               fmt(r.throughput(), 1), fmt(r.abort_rate(), 3),
               std::to_string(r.stats_delta.fallback_restarts),
               std::to_string(r.stats_delta.future_reexecutions)});
  }
  return 0;
}
