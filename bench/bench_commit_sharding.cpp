// Commit-spine sharding sweep (stm/commit_spine.hpp): flat RMW throughput
// over a stripes x threads grid, plus the sharded-path counters.
//
// Each worker "homes" on one address-hash bucket (computed at the maximum
// stripe mask, so a bucket maps into exactly one stripe at every sweep
// point) and runs single-stripe RMW transactions inside it; a configurable
// share of transactions additionally writes the next bucket, exercising
// the synchronous multi-stripe two-phase path. stripes=1 routes everything
// through queue 0 and must reproduce the pre-sharding pipeline — the ±5%
// parity row in BENCH_commit_sharding.json is this configuration.
//
// Flags: --threads a,b,c --stripes a,b,c --ms N --vars N --multi-pct P
//        --json FILE
#include <atomic>
#include <cstdio>
#include <cstring>
#include <deque>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "stm/transaction.hpp"
#include "util/timing.hpp"
#include "util/xoshiro.hpp"

using txf::util::Xoshiro256;

namespace {

constexpr unsigned kBuckets = 8;  // max sweep point; bucket & mask = stripe
constexpr int kReadsPerTxn = 8;
constexpr int kWritesPerTxn = 2;

struct Row {
  unsigned stripes;
  std::size_t threads;
  int multi_pct;
  double tput = 0;
  double abort_rate = 0;
  std::uint64_t multi_commits = 0;
  std::uint64_t multi_aborts = 0;
  std::vector<std::uint64_t> stripe_committed;
};

/// Boxes bucketed by their stripe at mask kBuckets-1. stripe_of() masks the
/// same shifted hash, so a bucket lands in stripe (bucket & (stripes-1)) at
/// every smaller power-of-two stripe count.
struct BucketedBoxes {
  std::deque<txf::stm::VBox<long>> pool;
  std::vector<std::vector<txf::stm::VBox<long>*>> bucket;

  explicit BucketedBoxes(std::size_t per_bucket) : bucket(kBuckets) {
    for (;;) {
      bool done = true;
      for (auto& b : bucket) done = done && b.size() >= per_bucket;
      if (done) break;
      pool.emplace_back(0L);
      bucket[txf::stm::stripe_of(&pool.back().impl(), kBuckets - 1)]
          .push_back(&pool.back());
    }
  }
};

Row run_one(unsigned stripes, std::size_t threads, int ms, std::size_t vars,
            int multi_pct) {
  txf::stm::StmEnv env(stripes);
  BucketedBoxes boxes(vars / kBuckets + 1);

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> committed{0};
  std::atomic<std::uint64_t> aborted{0};
  std::vector<std::thread> workers;
  const auto t0 = txf::util::now_ns();
  for (std::size_t w = 0; w < threads; ++w) {
    workers.emplace_back([&, w] {
      Xoshiro256 rng(77 + w);
      const auto& home = boxes.bucket[w % kBuckets];
      const auto& next = boxes.bucket[(w + 1) % kBuckets];
      txf::stm::Transaction tx(env);
      while (!stop.load(std::memory_order_acquire)) {
        const bool multi =
            rng.next_bounded(100) < static_cast<std::uint64_t>(multi_pct);
        tx.reset();
        for (;;) {
          long sum = 0;
          for (int i = 0; i < kReadsPerTxn; ++i)
            sum += home[rng.next_bounded(home.size())]->get(tx);
          for (int i = 0; i < kWritesPerTxn; ++i)
            home[rng.next_bounded(home.size())]->put(tx, sum + i);
          if (multi) next[rng.next_bounded(next.size())]->put(tx, sum);
          if (tx.try_commit()) break;
          aborted.fetch_add(1, std::memory_order_relaxed);
          tx.park();
          tx.reset();
        }
        committed.fetch_add(1, std::memory_order_relaxed);
      }
      tx.park();
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(ms));
  stop.store(true, std::memory_order_release);
  for (auto& t : workers) t.join();
  const double secs = static_cast<double>(txf::util::now_ns() - t0) * 1e-9;

  Row row{stripes, threads, multi_pct};
  const auto c = committed.load();
  const auto a = aborted.load();
  row.tput = static_cast<double>(c) / secs;
  row.abort_rate =
      c + a ? static_cast<double>(a) / static_cast<double>(c + a) : 0;
  row.multi_commits = env.queue().multi_commits();
  row.multi_aborts = env.queue().multi_aborts();
  for (unsigned s = 0; s < stripes; ++s) {
    row.stripe_committed.push_back(env.queue().stripe_committed(s));
    // The bench doubles as an invariant check: a gap here is a bug, not a
    // perf artifact.
    if (env.clock().current(s) != env.queue().stripe_committed(s)) {
      std::fprintf(stderr,
                   "FATAL: stripe %u clock=%llu committed=%llu (gap!)\n", s,
                   static_cast<unsigned long long>(env.clock().current(s)),
                   static_cast<unsigned long long>(
                       env.queue().stripe_committed(s)));
      std::exit(1);
    }
  }
  return row;
}

std::vector<unsigned> parse_list(const char* flag, const char* v) {
  std::vector<unsigned> out;
  std::stringstream ss(v);
  std::string tok;
  while (std::getline(ss, tok, ',')) {
    try {
      std::size_t used = 0;
      const auto n = std::stoul(tok, &used);
      if (used != tok.size()) throw std::invalid_argument(tok);
      out.push_back(static_cast<unsigned>(n));
    } catch (const std::exception&) {
      std::fprintf(stderr,
                   "error: %s expects a comma-separated list of "
                   "non-negative integers; got \"%s\"\n",
                   flag, tok.c_str());
      std::exit(2);
    }
  }
  if (out.empty()) {
    std::fprintf(stderr, "error: %s is empty\n", flag);
    std::exit(2);
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<unsigned> threads{1, 2, 4};
  std::vector<unsigned> stripes{1, 2, 4, 8};
  int ms = 150;
  std::size_t vars = 256;
  int multi_pct = 10;
  std::string json_path;

  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", a);
        std::exit(2);
      }
      return argv[++i];
    };
    if (std::strcmp(a, "--threads") == 0) {
      threads = parse_list(a, next());
    } else if (std::strcmp(a, "--stripes") == 0) {
      stripes = parse_list(a, next());
    } else if (std::strcmp(a, "--ms") == 0) {
      ms = std::atoi(next());
    } else if (std::strcmp(a, "--vars") == 0) {
      vars = static_cast<std::size_t>(std::atoll(next()));
    } else if (std::strcmp(a, "--multi-pct") == 0) {
      multi_pct = std::atoi(next());
    } else if (std::strcmp(a, "--json") == 0) {
      json_path = next();
    } else {
      std::fprintf(stderr, "unknown flag %s\n", a);
      return 2;
    }
  }

  std::vector<Row> rows;
  for (unsigned n : stripes) {
    for (unsigned t : threads) {
      rows.push_back(run_one(n, t, ms, vars, multi_pct));
      const Row& r = rows.back();
      std::printf(
          "stripes=%u threads=%zu multi_pct=%d tput=%.0f abort_rate=%.4f "
          "multi_commits=%llu multi_aborts=%llu\n",
          r.stripes, r.threads, r.multi_pct, r.tput, r.abort_rate,
          static_cast<unsigned long long>(r.multi_commits),
          static_cast<unsigned long long>(r.multi_aborts));
    }
  }

  if (!json_path.empty()) {
    std::ostringstream os;
    os << "{\"bench\": \"commit_sharding\", \"ms\": " << ms
       << ", \"vars\": " << vars << ", \"rows\": [";
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const Row& r = rows[i];
      if (i != 0) os << ", ";
      os << "{\"stripes\": " << r.stripes << ", \"threads\": " << r.threads
         << ", \"multi_pct\": " << r.multi_pct << ", \"tput\": " << r.tput
         << ", \"abort_rate\": " << r.abort_rate
         << ", \"multi_commits\": " << r.multi_commits
         << ", \"multi_aborts\": " << r.multi_aborts
         << ", \"stripe_committed\": [";
      for (std::size_t s = 0; s < r.stripe_committed.size(); ++s)
        os << (s != 0 ? ", " : "") << r.stripe_committed[s];
      os << "]}";
    }
    os << "]}\n";
    std::FILE* f = std::fopen(json_path.c_str(), "w");
    if (f == nullptr) {
      std::perror("fopen");
      return 1;
    }
    std::fputs(os.str().c_str(), f);
    std::fclose(f);
  }
  return 0;
}
