// Figure 5b — conflict-prone synthetic workload: normalized throughput of
// thread-allocation strategies i*j (i top-level transactions, each
// parallelized j ways) against the all-flat baseline, as the read prefix
// length grows.
//
// Paper setup: 48 threads total; transactions read a variable-length
// prefix (iter=1k CPU ops between accesses) then perform 10 updates on 20
// hot-spot items chosen uniformly with replacement; baseline = 48 flat
// top-level transactions. Futures win by (i) reducing the number of
// concurrent conflicting top-level transactions and (ii) shrinking each
// transaction's vulnerability window.
//
// Flags: --total N (total threads) --array N --ms N --lens a,b,c
//        --hot N --writes N --iter N --json FILE
//
// --json additionally reports the per-cause abort taxonomy
// (obs/abort_cause.hpp) for every i*j split, so contention experiments can
// distinguish read-validation kills from write-write and tree-order kills.
#include <array>
#include <cstdio>
#include <sstream>
#include <string>
#include <vector>

#include "obs/abort_cause.hpp"
#include "workloads/common/driver.hpp"
#include "workloads/synthetic/synthetic.hpp"

using txf::core::Config;
using txf::core::Runtime;
using txf::util::Xoshiro256;
using namespace txf::workloads;
namespace synth = txf::workloads::synthetic;

namespace {

constexpr std::size_t kCauses =
    static_cast<std::size_t>(txf::obs::AbortCause::kCount);

struct Outcome {
  double tput;
  double abort_rate;
  std::uint64_t commits = 0;
  std::uint64_t attempt_aborts = 0;
  std::array<std::uint64_t, kCauses> causes{};
};

Outcome measure(std::size_t top_level, std::size_t jobs, int ms,
                std::size_t array_size, const synth::UpdateParams& base) {
  Config cfg;
  cfg.pool_threads = top_level * (jobs > 1 ? jobs - 1 : 1);
  Runtime rt(cfg);
  // Fresh array per runtime: VBox versions are env-relative (see the
  // lifetime contract in stm/vbox.hpp).
  synth::SyntheticArray array(array_size);
  synth::UpdateParams p = base;
  p.jobs = jobs;
  const RunResult r = run_for(
      rt, top_level, ms,
      [&](std::size_t w, const std::function<bool()>& keep,
          WorkerMetrics& m) {
        Xoshiro256 rng(3000 + w);
        while (keep()) {
          synth::run_update_tx(rt, array, rng, p);
          ++m.transactions;
        }
      });
  Outcome o{r.throughput(), r.abort_rate()};
  // Fresh runtime per measurement => the accounting is exactly this run's.
  const txf::obs::AbortAccounting& acc = rt.env().abort_accounting();
  o.commits = acc.tx_commits.load();
  o.attempt_aborts = acc.attempt_aborts.load();
  for (std::size_t c = 0; c < kCauses; ++c) o.causes[c] = acc.cause[c].load();
  return o;
}

void append_causes_json(std::ostringstream& json, const Outcome& o) {
  json << "\"abort_causes\": {";
  bool first = true;
  for (std::size_t c = 0; c < kCauses; ++c) {
    if (o.causes[c] == 0) continue;
    json << (first ? "" : ", ") << "\""
         << txf::obs::abort_cause_name(static_cast<txf::obs::AbortCause>(c))
         << "\": " << o.causes[c];
    first = false;
  }
  json << "}";
}

}  // namespace

int main(int argc, char** argv) {
  const Args args(argc, argv);
  const auto total = static_cast<std::size_t>(args.get_int("total", 8));
  const auto array_size =
      static_cast<std::size_t>(args.get_int("array", 100000));
  const int ms = static_cast<int>(args.get_int("ms", 400));
  const auto lens = parse_u64_list("lens", args.get_str("lens", "100,1000,10000"));
  synth::UpdateParams base;
  base.iter = static_cast<std::uint64_t>(args.get_int("iter", 1000));
  base.hot_items = static_cast<std::size_t>(args.get_int("hot", 20));
  base.hot_writes = static_cast<std::size_t>(args.get_int("writes", 10));
  const std::string json_path = args.get_str("json", "");

  std::printf(
      "# Fig 5b: contention-prone synthetic — normalized throughput of i*j\n"
      "# splits of %zu threads vs the %zu*1 flat baseline; 10 updates on 20\n"
      "# hot items per transaction, iter=%llu, window=%dms\n",
      total, total,
      static_cast<unsigned long long>(base.iter), ms);

  // i*j splits of the fixed thread budget.
  std::vector<std::pair<std::size_t, std::size_t>> splits;
  for (std::size_t j = 1; j <= total; j *= 2) {
    if (total % j == 0) splits.emplace_back(total / j, j);
  }

  std::vector<std::string> header{"prefix_len"};
  for (const auto& [i, j] : splits)
    header.push_back(std::to_string(i) + "*" + std::to_string(j));
  header.push_back("abort(base)");
  header.push_back("abort(best)");
  print_header(header);

  std::ostringstream json;
  json << "{\n  \"bench\": \"fig5b_contention\",\n"
       << "  \"total_threads\": " << total << ", \"array\": " << array_size
       << ", \"ms\": " << ms << ", \"hot\": " << base.hot_items
       << ", \"writes\": " << base.hot_writes << ",\n  \"rows\": [";
  bool first_row = true;
  for (const auto len : lens) {
    synth::UpdateParams p = base;
    p.prefix_len = static_cast<std::size_t>(len);
    double base_tput = 0;
    double base_abort = 0;
    std::vector<std::string> row{std::to_string(len)};
    double best_norm = 0, best_abort = 0;
    for (const auto& [i, j] : splits) {
      const Outcome o = measure(i, j, ms, array_size, p);
      if (j == 1) {
        base_tput = o.tput;
        base_abort = o.abort_rate;
      }
      const double norm = base_tput > 0 ? o.tput / base_tput : 0;
      if (norm > best_norm) {
        best_norm = norm;
        best_abort = o.abort_rate;
      }
      row.push_back(fmt(norm, 3));
      json << (first_row ? "" : ",") << "\n    {\"prefix_len\": " << len
           << ", \"split\": \"" << i << "*" << j << "\""
           << ", \"tput\": " << fmt(o.tput, 1)
           << ", \"norm\": " << fmt(norm, 3)
           << ", \"abort_rate\": " << fmt(o.abort_rate, 4)
           << ", \"commits\": " << o.commits
           << ", \"attempt_aborts\": " << o.attempt_aborts << ", ";
      append_causes_json(json, o);
      json << "}";
      first_row = false;
    }
    row.push_back(fmt(base_abort, 3));
    row.push_back(fmt(best_abort, 3));
    print_row(row);
  }
  json << "\n  ]\n}\n";
  if (!json_path.empty()) {
    if (std::FILE* f = std::fopen(json_path.c_str(), "w")) {
      const std::string s = json.str();
      std::fwrite(s.data(), 1, s.size(), f);
      std::fclose(f);
      std::printf("# json written to %s\n", json_path.c_str());
    } else {
      std::fprintf(stderr, "cannot open %s\n", json_path.c_str());
      return 1;
    }
  }
  std::printf(
      "# Expected shape (paper): with contention, fewer top-level\n"
      "# transactions each parallelized via futures beat the flat baseline;\n"
      "# the abort rate collapses as j grows.\n");
  return 0;
}
