// Figure 5b — conflict-prone synthetic workload: normalized throughput of
// thread-allocation strategies i*j (i top-level transactions, each
// parallelized j ways) against the all-flat baseline, as the read prefix
// length grows.
//
// Paper setup: 48 threads total; transactions read a variable-length
// prefix (iter=1k CPU ops between accesses) then perform 10 updates on 20
// hot-spot items chosen uniformly with replacement; baseline = 48 flat
// top-level transactions. Futures win by (i) reducing the number of
// concurrent conflicting top-level transactions and (ii) shrinking each
// transaction's vulnerability window.
//
// Flags: --total N (total threads) --array N --ms N --lens a,b,c
//        --hot N --writes N --iter N
#include <cstdio>
#include <sstream>
#include <string>
#include <vector>

#include "workloads/common/driver.hpp"
#include "workloads/synthetic/synthetic.hpp"

using txf::core::Config;
using txf::core::Runtime;
using txf::util::Xoshiro256;
using namespace txf::workloads;
namespace synth = txf::workloads::synthetic;

namespace {

struct Outcome {
  double tput;
  double abort_rate;
};

Outcome measure(std::size_t top_level, std::size_t jobs, int ms,
                std::size_t array_size, const synth::UpdateParams& base) {
  Config cfg;
  cfg.pool_threads = top_level * (jobs > 1 ? jobs - 1 : 1);
  Runtime rt(cfg);
  // Fresh array per runtime: VBox versions are env-relative (see the
  // lifetime contract in stm/vbox.hpp).
  synth::SyntheticArray array(array_size);
  synth::UpdateParams p = base;
  p.jobs = jobs;
  const RunResult r = run_for(
      rt, top_level, ms,
      [&](std::size_t w, const std::function<bool()>& keep,
          WorkerMetrics& m) {
        Xoshiro256 rng(3000 + w);
        while (keep()) {
          synth::run_update_tx(rt, array, rng, p);
          ++m.transactions;
        }
      });
  return {r.throughput(), r.abort_rate()};
}

}  // namespace

int main(int argc, char** argv) {
  const Args args(argc, argv);
  const auto total = static_cast<std::size_t>(args.get_int("total", 8));
  const auto array_size =
      static_cast<std::size_t>(args.get_int("array", 100000));
  const int ms = static_cast<int>(args.get_int("ms", 400));
  const auto lens = parse_u64_list("lens", args.get_str("lens", "100,1000,10000"));
  synth::UpdateParams base;
  base.iter = static_cast<std::uint64_t>(args.get_int("iter", 1000));
  base.hot_items = static_cast<std::size_t>(args.get_int("hot", 20));
  base.hot_writes = static_cast<std::size_t>(args.get_int("writes", 10));

  std::printf(
      "# Fig 5b: contention-prone synthetic — normalized throughput of i*j\n"
      "# splits of %zu threads vs the %zu*1 flat baseline; 10 updates on 20\n"
      "# hot items per transaction, iter=%llu, window=%dms\n",
      total, total,
      static_cast<unsigned long long>(base.iter), ms);

  // i*j splits of the fixed thread budget.
  std::vector<std::pair<std::size_t, std::size_t>> splits;
  for (std::size_t j = 1; j <= total; j *= 2) {
    if (total % j == 0) splits.emplace_back(total / j, j);
  }

  std::vector<std::string> header{"prefix_len"};
  for (const auto& [i, j] : splits)
    header.push_back(std::to_string(i) + "*" + std::to_string(j));
  header.push_back("abort(base)");
  header.push_back("abort(best)");
  print_header(header);

  for (const auto len : lens) {
    synth::UpdateParams p = base;
    p.prefix_len = static_cast<std::size_t>(len);
    double base_tput = 0;
    double base_abort = 0;
    std::vector<std::string> row{std::to_string(len)};
    double best_norm = 0, best_abort = 0;
    for (const auto& [i, j] : splits) {
      const Outcome o = measure(i, j, ms, array_size, p);
      if (j == 1) {
        base_tput = o.tput;
        base_abort = o.abort_rate;
      }
      const double norm = base_tput > 0 ? o.tput / base_tput : 0;
      if (norm > best_norm) {
        best_norm = norm;
        best_abort = o.abort_rate;
      }
      row.push_back(fmt(norm, 3));
    }
    row.push_back(fmt(base_abort, 3));
    row.push_back(fmt(best_abort, 3));
    print_row(row);
  }
  std::printf(
      "# Expected shape (paper): with contention, fewer top-level\n"
      "# transactions each parallelized via futures beat the flat baseline;\n"
      "# the abort rate collapses as j grows.\n");
  return 0;
}
