// IntSet list micro-workload (the classic STM benchmark): a sorted
// transactional linked list under a configurable mix of
// contains/insert/erase, swept over thread counts. Exercises long
// traversal read sets and splice conflicts on the MVCC substrate —
// complementary to the word-granularity synthetic benchmark.
//
// Flags: --threads a,b,c --ms N --range N --update-pct N
#include <cstdio>
#include <sstream>

#include "containers/tx_list.hpp"
#include "core/api.hpp"
#include "workloads/common/driver.hpp"

using txf::containers::TxList;
using txf::core::Config;
using txf::core::Runtime;
using txf::core::TxCtx;
using txf::util::Xoshiro256;
using namespace txf::workloads;

int main(int argc, char** argv) {
  const Args args(argc, argv);
  const auto threads = parse_size_list("threads", args.get_str("threads", "1,2,4"));
  const int ms = static_cast<int>(args.get_int("ms", 400));
  const long range = args.get_int("range", 512);
  const int update_pct = static_cast<int>(args.get_int("update-pct", 20));

  std::printf(
      "# IntSet list: %ld-key range, %d%% updates, window=%dms\n",
      range, update_pct, ms);
  print_header({"threads", "ops/s", "abort_rate", "final_size"});

  for (const std::size_t n : threads) {
    Config cfg;
    cfg.pool_threads = 1;  // no futures in this workload
    Runtime rt(cfg);
    TxList list;
    // Pre-fill to ~half capacity.
    txf::core::atomically(rt, [&](TxCtx& ctx) {
      for (long k = 0; k < range; k += 2) list.insert(ctx, k);
    });

    const RunResult r = run_for(
        rt, n, ms,
        [&](std::size_t w, const std::function<bool()>& keep,
            WorkerMetrics& m) {
          Xoshiro256 rng(70 + w);
          while (keep()) {
            const long key = static_cast<long>(
                rng.next_bounded(static_cast<std::uint64_t>(range)));
            const auto roll = rng.next_bounded(100);
            txf::core::atomically(rt, [&](TxCtx& ctx) {
              if (roll < static_cast<std::uint64_t>(update_pct) / 2) {
                list.insert(ctx, key);
              } else if (roll < static_cast<std::uint64_t>(update_pct)) {
                list.erase(ctx, key);
              } else {
                (void)list.contains(ctx, key);
              }
            });
            ++m.transactions;
          }
        });
    long final_size = 0;
    txf::core::atomically(rt, [&](TxCtx& ctx) {
      final_size = list.size(ctx);
      if (!list.is_sorted(ctx)) final_size = -1;  // invariant breach marker
    });
    print_row({std::to_string(n), fmt(r.throughput(), 1),
               fmt(r.abort_rate(), 3), std::to_string(final_size)});
  }
  return 0;
}
