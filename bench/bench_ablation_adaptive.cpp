// Ablation — adaptive future scheduling (Config::scheduling): the four
// SchedulingModes compared on four workload shapes.
//
//  * fig5a    — read-only synthetic with substantial future bodies (the
//               regime where parallel futures pay; Fig. 5a's profitable
//               corner). Adaptive must track kAlwaysParallel here: fresh
//               sites start parallel and profitable sites never demote.
//  * fig5b    — read-prefix + hot-spot-update contention shape (Fig. 5b).
//               Conflict-aware demotion (ISSUE 8) must move the hot sites
//               off pure-parallel, so adaptive tracks the inline mode
//               instead of losing to it.
//  * siblings — siblings-collide: every sibling RMWs the same hot set with
//               CPU padding, so bodies look profitable but racing siblings
//               die to tree-order conflicts. Isolates the ordered lane's
//               win over parallel abort-retry churn.
//  * tiny     — deliberately unprofitable: each future body performs a
//               single transactional read (txlen == jobs, iter == 0), so
//               the parallel activation cost (node, pool hop, per-node
//               validation, join) dwarfs the work. Adaptive must demote to
//               inline and track kAlwaysInline.
//
// Output: one row per (workload, mode) with throughput, the
// core.adaptive.* decision/transition counters for that run (all zero in
// the fixed modes, which short-circuit the controller), and the per-run
// abort-cause breakdown (tx.abort.cause.{tree_order,read_validation,
// write_write}) — the conflict signal the controller feeds on.
//
// Flags: --array N --trees N --jobs N --ms N --txlen N --iter N --reps N
//        --json FILE  (each cell reports the median-throughput run of
//        --reps repetitions)
// scripts/bench_adaptive.sh runs this with --json and gates on
// tiny: adaptive >= 0.9x inline, fig5a: adaptive >= 0.95x parallel,
// fig5b: adaptive >= 0.95x inline with conflict demotions > 0.
#include <algorithm>
#include <cstdio>
#include <functional>
#include <sstream>
#include <string>
#include <vector>

#include "core/api.hpp"
#include "obs/metrics.hpp"
#include "workloads/common/driver.hpp"
#include "workloads/synthetic/synthetic.hpp"

using txf::core::Config;
using txf::core::Runtime;
using txf::core::SchedulingMode;
using txf::util::Xoshiro256;
using namespace txf::workloads;
namespace synth = txf::workloads::synthetic;

namespace {

const char* mode_name(SchedulingMode m) {
  switch (m) {
    case SchedulingMode::kAlwaysParallel: return "parallel";
    case SchedulingMode::kAlwaysInline: return "inline";
    case SchedulingMode::kAlwaysOrdered: return "ordered";
    case SchedulingMode::kAdaptive: return "adaptive";
  }
  return "?";
}

/// core.adaptive.* totals of one run (fresh Runtime per measurement, read
/// through the registry while the runtime is still alive — instances
/// deregister on destruction, so this is exactly this run's controller).
struct AdaptiveTally {
  std::uint64_t parallel_decisions = 0;
  std::uint64_t inline_decisions = 0;
  std::uint64_t ordered_decisions = 0;
  std::uint64_t probes = 0;
  std::uint64_t demotions = 0;
  std::uint64_t conflict_demotions = 0;
  std::uint64_t promotions = 0;

  static AdaptiveTally snapshot() {
    const auto& reg = txf::obs::MetricsRegistry::instance();
    AdaptiveTally t;
    t.parallel_decisions = reg.counter_value("core.adaptive.parallel_decisions");
    t.inline_decisions = reg.counter_value("core.adaptive.inline_decisions");
    t.ordered_decisions = reg.counter_value("core.adaptive.ordered_decisions");
    t.probes = reg.counter_value("core.adaptive.probes");
    t.demotions = reg.counter_value("core.adaptive.demotions");
    t.conflict_demotions =
        reg.counter_value("core.adaptive.conflict_demotions");
    t.promotions = reg.counter_value("core.adaptive.promotions");
    return t;
  }
};

/// Per-run abort-cause breakdown (the conflict classes the controller's
/// EWMA feeds on, plus the attempt total for context).
struct AbortTally {
  std::uint64_t tree_order = 0;
  std::uint64_t read_validation = 0;
  std::uint64_t write_write = 0;
  std::uint64_t attempt_aborts = 0;

  static AbortTally snapshot() {
    const auto& reg = txf::obs::MetricsRegistry::instance();
    AbortTally t;
    t.tree_order = reg.counter_value("tx.abort.cause.tree_order");
    t.read_validation = reg.counter_value("tx.abort.cause.read_validation");
    t.write_write = reg.counter_value("tx.abort.cause.write_write");
    t.attempt_aborts = reg.counter_value("tx.attempt_aborts");
    return t;
  }
};

struct Measurement {
  double tput = 0;
  std::uint64_t futures_submitted = 0;
  AdaptiveTally adaptive;
  AbortTally aborts;
};

using TxBody =
    std::function<void(Runtime&, synth::SyntheticArray&, Xoshiro256&)>;

Measurement measure(SchedulingMode mode, std::size_t trees, std::size_t jobs,
                    int ms, std::size_t array_size, const TxBody& body) {
  Config cfg;
  cfg.pool_threads = trees * (jobs > 1 ? jobs - 1 : 1);
  cfg.scheduling = mode;
  Runtime rt(cfg);
  // Fresh array per runtime: the update shape writes, and VBox versions are
  // env-relative (see the lifetime contract in stm/vbox.hpp).
  synth::SyntheticArray array(array_size);
  const RunResult r = run_for(
      rt, trees, ms,
      [&](std::size_t w, const std::function<bool()>& keep,
          WorkerMetrics& m) {
        Xoshiro256 rng(1000 + w);
        while (keep()) {
          body(rt, array, rng);
          ++m.transactions;
        }
      });
  Measurement out;
  out.tput = r.throughput();
  out.futures_submitted = r.stats_delta.futures_submitted;
  out.adaptive = AdaptiveTally::snapshot();  // before ~Runtime deregisters
  out.aborts = AbortTally::snapshot();
  return out;
}

/// Median-throughput run of `reps` repetitions: single windows on small
/// shared machines are too noisy for the ratio gates bench_adaptive.sh
/// applies.
Measurement measure_median(SchedulingMode mode, std::size_t trees,
                           std::size_t jobs, int ms, std::size_t array_size,
                           std::size_t reps, const TxBody& body) {
  std::vector<Measurement> runs;
  for (std::size_t i = 0; i < (reps == 0 ? 1 : reps); ++i)
    runs.push_back(measure(mode, trees, jobs, ms, array_size, body));
  std::sort(runs.begin(), runs.end(),
            [](const Measurement& a, const Measurement& b) {
              return a.tput < b.tput;
            });
  return runs[runs.size() / 2];
}

}  // namespace

int main(int argc, char** argv) {
  const Args args(argc, argv);
  const auto array_size =
      static_cast<std::size_t>(args.get_int("array", 100000));
  const auto trees = static_cast<std::size_t>(args.get_int("trees", 2));
  const auto jobs = static_cast<std::size_t>(args.get_int("jobs", 4));
  const int ms = static_cast<int>(args.get_int("ms", 300));
  const auto txlen = static_cast<std::size_t>(args.get_int("txlen", 1000));
  const auto iter = static_cast<std::uint64_t>(args.get_int("iter", 200));
  const auto reps = static_cast<std::size_t>(args.get_int("reps", 3));
  const std::string json_path = args.get_str("json", "");

  std::printf(
      "# Ablation: adaptive future scheduling — %zu trees, %zux jobs, "
      "array=%zu, window=%dms\n",
      trees, jobs, array_size, ms);

  const synth::ReadOnlyParams fig5a{.txlen = txlen, .iter = iter,
                                    .jobs = jobs};
  const synth::UpdateParams fig5b{.prefix_len = txlen, .iter = iter / 2,
                                  .jobs = jobs, .hot_items = 64,
                                  .hot_writes = 4};
  // One read per future body, zero CPU work: nothing to win by spawning.
  const synth::ReadOnlyParams tiny{.txlen = jobs, .iter = 0, .jobs = jobs};
  // Every sibling RMWs the same hot set: bodies big enough to look
  // profitable, conflicts near-certain when siblings race.
  const synth::SiblingsCollideParams siblings{
      .jobs = jobs, .hot_items = 8, .writes = 4, .iter = iter * 10};

  struct Workload {
    const char* name;
    TxBody body;
  };
  const std::vector<Workload> workloads = {
      {"fig5a_readonly",
       [&](Runtime& rt, synth::SyntheticArray& array, Xoshiro256& rng) {
         (void)synth::run_readonly_tx(rt, array, rng, fig5a);
       }},
      {"fig5b_update",
       [&](Runtime& rt, synth::SyntheticArray& array, Xoshiro256& rng) {
         synth::run_update_tx(rt, array, rng, fig5b);
       }},
      {"siblings_collide",
       [&](Runtime& rt, synth::SyntheticArray& array, Xoshiro256& rng) {
         synth::run_siblings_collide_tx(rt, array, rng, siblings);
       }},
      {"tiny_futures",
       [&](Runtime& rt, synth::SyntheticArray& array, Xoshiro256& rng) {
         (void)synth::run_readonly_tx(rt, array, rng, tiny);
       }},
  };
  const SchedulingMode modes[] = {SchedulingMode::kAlwaysParallel,
                                  SchedulingMode::kAlwaysInline,
                                  SchedulingMode::kAlwaysOrdered,
                                  SchedulingMode::kAdaptive};

  print_header({"workload", "mode", "tx/s", "futures", "par_dec", "inl_dec",
                "ord_dec", "probes", "demote", "cfl_dem", "promote",
                "ab_ord", "ab_rv", "ab_ww"});
  std::ostringstream json;
  json << "{\n  \"bench\": \"ablation_adaptive\",\n"
       << "  \"trees\": " << trees << ", \"jobs\": " << jobs
       << ", \"array\": " << array_size << ", \"ms\": " << ms
       << ", \"txlen\": " << txlen << ", \"iter\": " << iter
       << ",\n  \"workloads\": [";
  bool first_wl = true;
  for (const auto& wl : workloads) {
    json << (first_wl ? "" : ",") << "\n    {\"name\": \"" << wl.name
         << "\", \"modes\": {";
    first_wl = false;
    bool first_mode = true;
    for (const SchedulingMode mode : modes) {
      const Measurement m =
          measure_median(mode, trees, jobs, ms, array_size, reps, wl.body);
      print_row({wl.name, mode_name(mode), fmt(m.tput, 1),
                 std::to_string(m.futures_submitted),
                 std::to_string(m.adaptive.parallel_decisions),
                 std::to_string(m.adaptive.inline_decisions),
                 std::to_string(m.adaptive.ordered_decisions),
                 std::to_string(m.adaptive.probes),
                 std::to_string(m.adaptive.demotions),
                 std::to_string(m.adaptive.conflict_demotions),
                 std::to_string(m.adaptive.promotions),
                 std::to_string(m.aborts.tree_order),
                 std::to_string(m.aborts.read_validation),
                 std::to_string(m.aborts.write_write)});
      json << (first_mode ? "" : ", ") << "\"" << mode_name(mode)
           << "\": {\"tput\": " << fmt(m.tput, 1)
           << ", \"futures_submitted\": " << m.futures_submitted
           << ", \"adaptive\": {\"parallel_decisions\": "
           << m.adaptive.parallel_decisions
           << ", \"inline_decisions\": " << m.adaptive.inline_decisions
           << ", \"ordered_decisions\": " << m.adaptive.ordered_decisions
           << ", \"probes\": " << m.adaptive.probes
           << ", \"demotions\": " << m.adaptive.demotions
           << ", \"conflict_demotions\": " << m.adaptive.conflict_demotions
           << ", \"promotions\": " << m.adaptive.promotions
           << "}, \"aborts\": {\"tree_order\": " << m.aborts.tree_order
           << ", \"read_validation\": " << m.aborts.read_validation
           << ", \"write_write\": " << m.aborts.write_write
           << ", \"attempts\": " << m.aborts.attempt_aborts << "}}";
      first_mode = false;
    }
    json << "}}";
  }
  json << "\n  ]\n}\n";
  if (!json_path.empty()) {
    if (std::FILE* f = std::fopen(json_path.c_str(), "w")) {
      const std::string s = json.str();
      std::fwrite(s.data(), 1, s.size(), f);
      std::fclose(f);
      std::printf("# json written to %s\n", json_path.c_str());
    } else {
      std::fprintf(stderr, "cannot open %s\n", json_path.c_str());
      return 1;
    }
  }
  std::printf(
      "# Expected shape: tiny_futures — adaptive demotes and tracks the\n"
      "# inline mode; fig5a — adaptive stays parallel (no demotions once\n"
      "# bodies prove profitable) and tracks the parallel mode; fig5b and\n"
      "# siblings_collide — conflict demotions move hot sites off\n"
      "# pure-parallel, so adaptive tracks inline/ordered instead of\n"
      "# burning throughput on abort-retry.\n");
  return 0;
}
