// Ablation C — the §IV-E read-only-future optimization: skipping
// validation of read-only sub-transactions when no read-write
// sub-transaction committed before them. Measured on a read-mostly
// synthetic workload whose transactions fan out many read-only futures.
//
// Flags: --trees N --jobs N --ms N --txlen N --array N
#include <cstdio>

#include "workloads/common/driver.hpp"
#include "workloads/synthetic/synthetic.hpp"

using txf::core::Config;
using txf::core::Runtime;
using txf::util::Xoshiro256;
using namespace txf::workloads;
namespace synth = txf::workloads::synthetic;

int main(int argc, char** argv) {
  const Args args(argc, argv);
  const auto trees = static_cast<std::size_t>(args.get_int("trees", 2));
  const auto jobs = static_cast<std::size_t>(args.get_int("jobs", 4));
  const int ms = static_cast<int>(args.get_int("ms", 400));
  const auto array_size =
      static_cast<std::size_t>(args.get_int("array", 100000));
  synth::ReadOnlyParams p;
  p.txlen = static_cast<std::size_t>(args.get_int("txlen", 2000));
  p.iter = 50;
  p.jobs = jobs;

  std::printf(
      "# Ablation C: read-only future validation skip (paper §IV-E)\n"
      "# (%zu trees x %zu-way read-only transactions, txlen=%zu, %dms)\n",
      trees, jobs, p.txlen, ms);
  synth::SyntheticArray array(array_size);
  {
    // Warm-up pass: fault in the whole array so the first measured
    // configuration is not penalized.
    std::uint64_t sink = 0;
    for (std::size_t i = 0; i < array.size(); ++i)
      sink += array.box(i).peek_committed();
    if (sink == 0xdeadbeef) std::printf("#\n");
  }

  print_header({"ro_opt", "tx/s", "ro_skips", "reexecs"});
  for (const bool opt : {true, false}) {
    Config cfg;
    cfg.pool_threads = trees * (jobs - 1);
    cfg.read_only_future_opt = opt;
    Runtime rt(cfg);
    const auto body = [&](std::size_t w, const std::function<bool()>& keep,
                          WorkerMetrics& m) {
      Xoshiro256 rng(8000 + w);
      while (keep()) {
        (void)synth::run_readonly_tx(rt, array, rng, p);
        ++m.transactions;
      }
    };
    // Two passes per configuration; report the warm second pass (CPU
    // frequency and allocator ramp-up dominate the first).
    (void)run_for(rt, trees, ms / 2, body);
    const RunResult r = run_for(rt, trees, ms, body);
    print_row({opt ? "on" : "off", fmt(r.throughput(), 1),
               std::to_string(r.stats_delta.ro_validation_skips),
               std::to_string(r.stats_delta.future_reexecutions)});
  }
  return 0;
}
