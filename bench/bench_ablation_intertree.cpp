// Ablation B' — inter-tree write-write conflict policies (Alg. 1's
// ownedbyAnotherTree): the paper's abort-to-root-and-restart-in-fallback
// versus switching the live tree to the private store without aborting.
//
// Measured on a write-heavy hot-spot workload where sub-transactions of
// different trees contend for the same tentative-head locks.
//
// Flags: --total N --ms N --len N --array N --hot N
#include <cstdio>

#include "workloads/common/driver.hpp"
#include "workloads/synthetic/synthetic.hpp"

using txf::core::Config;
using txf::core::InterTreePolicy;
using txf::core::Runtime;
using txf::util::Xoshiro256;
using namespace txf::workloads;
namespace synth = txf::workloads::synthetic;

int main(int argc, char** argv) {
  const Args args(argc, argv);
  const auto total = static_cast<std::size_t>(args.get_int("total", 8));
  const int ms = static_cast<int>(args.get_int("ms", 400));
  const auto array_size =
      static_cast<std::size_t>(args.get_int("array", 100000));
  synth::UpdateParams p;
  p.prefix_len = static_cast<std::size_t>(args.get_int("len", 200));
  p.iter = 100;
  p.jobs = 2;
  p.hot_items = static_cast<std::size_t>(args.get_int("hot", 20));

  std::printf(
      "# Ablation B': inter-tree conflict policy — abort-to-root (paper)\n"
      "# vs switch-to-private; hot-spot updates, %zu x 2-way trees, %dms\n",
      total / 2, ms);

  print_header({"policy", "tx/s", "abort_rate", "fallback_restarts"});
  for (const InterTreePolicy policy :
       {InterTreePolicy::kAbortToRoot, InterTreePolicy::kSwitchToPrivate}) {
    Config cfg;
    cfg.pool_threads = total / 2;
    cfg.inter_tree = policy;
    Runtime rt(cfg);
    // Fresh array per runtime (VBox<->StmEnv lifetime contract).
    synth::SyntheticArray array(array_size);
    const RunResult r = run_for(
        rt, total / 2, ms,
        [&](std::size_t w, const std::function<bool()>& keep,
            WorkerMetrics& m) {
          Xoshiro256 rng(9000 + w);
          while (keep()) {
            synth::run_update_tx(rt, array, rng, p);
            ++m.transactions;
          }
        });
    print_row({policy == InterTreePolicy::kAbortToRoot ? "abort-to-root"
                                                       : "switch-private",
               fmt(r.throughput(), 1), fmt(r.abort_rate(), 3),
               std::to_string(r.stats_delta.fallback_restarts)});
  }
  return 0;
}
