// Figure 5a — read-only synthetic workload: normalized throughput of
// future-parallelized transactions vs transaction length and CPU work.
//
// Paper setup: 1M-element array; transaction length (reads) in
// {10, 100, 1k, 10k, 100k}; iter (CPU loop between accesses) in
// {0, 100, 1k, 10k}; two concurrent top-level transactions, each
// parallelized 16x; baseline = the same two transactions with no futures.
// Since synchronization is unnecessary in a read-only workload, comparing
// JTF against plain (non-transactional) futures isolates the overhead JTF
// adds on top of inherent future costs.
//
// Output: one row per (txlen, iter) with normalized throughput of JTF
// futures and plain futures against the no-future baseline (baseline=1.0).
//
// Flags: --array N --trees N --jobs N --ms N --txlens a,b,c --iters a,b,c
//        --json FILE
// Defaults are scaled for small machines; use --jobs 16 --array 1000000
// --txlens 10,100,1000,10000,100000 --iters 0,100,1000,10000 to reproduce
// the paper's full grid.
//
// --json additionally reports the transactional runs' read-path telemetry
// (VBox home-slot hits vs permanent-list walks); scripts/bench_read_path.sh
// gates on it.
#include <cstdio>
#include <sstream>
#include <string>
#include <vector>

#include "stm/read_stats.hpp"
#include "util/timing.hpp"
#include "workloads/common/driver.hpp"
#include "workloads/synthetic/synthetic.hpp"

using txf::core::Config;
using txf::core::Runtime;
using txf::util::Xoshiro256;
using namespace txf::workloads;
namespace synth = txf::workloads::synthetic;

namespace {

/// Aggregated read-path telemetry of one transactional run (fresh Runtime
/// per measurement, so the counters start from zero each time).
struct ReadPathTally {
  std::uint64_t home_hits = 0;
  std::uint64_t list_walks = 0;

  void absorb(const txf::stm::ReadPathStats& s) {
    home_hits += s.home_hits.load(std::memory_order_relaxed);
    list_walks += s.list_walks.load(std::memory_order_relaxed);
  }
  double hit_rate() const {
    const double total = static_cast<double>(home_hits + list_walks);
    return total > 0 ? static_cast<double>(home_hits) / total : 0.0;
  }
};

double measure_tx(std::size_t trees, std::size_t jobs, int ms,
                  synth::SyntheticArray& array, std::size_t txlen,
                  std::uint64_t iter, ReadPathTally* reads = nullptr) {
  Config cfg;
  cfg.pool_threads = trees * (jobs > 1 ? jobs - 1 : 1);
  Runtime rt(cfg);
  const synth::ReadOnlyParams p{.txlen = txlen, .iter = iter, .jobs = jobs};
  const RunResult r = run_for(
      rt, trees, ms,
      [&](std::size_t w, const std::function<bool()>& keep,
          WorkerMetrics& m) {
        Xoshiro256 rng(1000 + w);
        while (keep()) {
          (void)synth::run_readonly_tx(rt, array, rng, p);
          ++m.transactions;
        }
      });
  if (reads != nullptr) reads->absorb(rt.env().read_stats());
  return r.throughput();
}

double measure_plain(std::size_t trees, std::size_t jobs, int ms,
                     synth::SyntheticArray& array, std::size_t txlen,
                     std::uint64_t iter) {
  Config cfg;
  cfg.pool_threads = trees * (jobs > 1 ? jobs - 1 : 1);
  Runtime rt(cfg);
  const synth::ReadOnlyParams p{.txlen = txlen, .iter = iter, .jobs = jobs};
  const RunResult r = run_for(
      rt, trees, ms,
      [&](std::size_t w, const std::function<bool()>& keep,
          WorkerMetrics& m) {
        Xoshiro256 rng(2000 + w);
        while (keep()) {
          (void)synth::run_readonly_plain(rt.pool(), array, rng, p);
          ++m.transactions;
        }
      });
  return r.throughput();
}

}  // namespace

int main(int argc, char** argv) {
  const Args args(argc, argv);
  const auto array_size =
      static_cast<std::size_t>(args.get_int("array", 100000));
  const auto trees = static_cast<std::size_t>(args.get_int("trees", 2));
  const auto jobs = static_cast<std::size_t>(args.get_int("jobs", 4));
  const int ms = static_cast<int>(args.get_int("ms", 300));
  const auto txlens = parse_u64_list("txlens", args.get_str("txlens", "10,100,1000,10000"));
  const auto iters = parse_u64_list("iters", args.get_str("iters", "0,100,1000"));
  const std::string json_path = args.get_str("json", "");

  std::printf(
      "# Fig 5a: read-only synthetic — normalized throughput vs baseline\n"
      "# %zu top-level transactions, %zux intra-transaction parallelism, "
      "array=%zu, window=%dms\n",
      trees, jobs, array_size, ms);
  // Read-only workload: the array is never written, so no versions beyond
  // the initial ones exist and sharing it across runtimes is safe (see the
  // VBox<->StmEnv lifetime contract in stm/vbox.hpp).
  synth::SyntheticArray array(array_size);

  print_header({"txlen", "iter", "base_tx/s", "jtf_norm", "plain_norm",
                "jtf_vs_plain"});
  std::ostringstream json;
  json << "{\n  \"bench\": \"fig5a_readonly\",\n"
       << "  \"trees\": " << trees << ", \"jobs\": " << jobs
       << ", \"array\": " << array_size << ", \"ms\": " << ms
       << ",\n  \"rows\": [";
  bool first_row = true;
  ReadPathTally total_reads;
  for (const auto txlen : txlens) {
    for (const auto iter : iters) {
      ReadPathTally reads;
      const double base =
          measure_tx(trees, 1, ms, array, txlen, iter, &reads);  // no futures
      const double jtf = measure_tx(trees, jobs, ms, array, txlen, iter, &reads);
      const double plain = measure_plain(trees, jobs, ms, array, txlen, iter);
      print_row({std::to_string(txlen), std::to_string(iter),
                 fmt(base, 1), fmt(base > 0 ? jtf / base : 0, 3),
                 fmt(base > 0 ? plain / base : 0, 3),
                 fmt(plain > 0 ? jtf / plain : 0, 3)});
      std::printf("#   read path: home_hits=%llu list_walks=%llu hit_rate=%.4f\n",
                  static_cast<unsigned long long>(reads.home_hits),
                  static_cast<unsigned long long>(reads.list_walks),
                  reads.hit_rate());
      json << (first_row ? "" : ",") << "\n    {\"txlen\": " << txlen
           << ", \"iter\": " << iter << ", \"base_tput\": " << fmt(base, 1)
           << ", \"jtf_tput\": " << fmt(jtf, 1)
           << ", \"plain_tput\": " << fmt(plain, 1)
           << ", \"read_path\": {\"home_hits\": " << reads.home_hits
           << ", \"list_walks\": " << reads.list_walks
           << ", \"hit_rate\": " << fmt(reads.hit_rate(), 4) << "}}";
      first_row = false;
      total_reads.home_hits += reads.home_hits;
      total_reads.list_walks += reads.list_walks;
    }
  }
  json << "\n  ],\n  \"read_path_total\": {\"home_hits\": "
       << total_reads.home_hits
       << ", \"list_walks\": " << total_reads.list_walks
       << ", \"hit_rate\": " << fmt(total_reads.hit_rate(), 4) << "}\n}\n";
  if (!json_path.empty()) {
    if (std::FILE* f = std::fopen(json_path.c_str(), "w")) {
      const std::string s = json.str();
      std::fwrite(s.data(), 1, s.size(), f);
      std::fclose(f);
      std::printf("# json written to %s\n", json_path.c_str());
    } else {
      std::fprintf(stderr, "cannot open %s\n", json_path.c_str());
      return 1;
    }
  }
  std::printf(
      "# Expected shape (paper): futures pay off only for long, CPU-bound\n"
      "# transactions; iter=0 (memory-bound) parallelization hurts;\n"
      "# jtf_vs_plain stays close to 1 (JTF adds little over plain futures).\n");
  return 0;
}
