// Figure 6a/6b/6c — Vacation (STAMP): throughput, execution time and abort
// rate vs total thread count, for five thread-allocation strategies —
// flat (no futures) and 1, 3, 5 or 7 transactional futures per top-level
// transaction (plus the continuation thread), at a fixed total budget.
//
// Paper setup: up to 48 threads; the long query cycle of MakeReservation
// is parallelized with futures. Flat Vacation scales to ~16 threads then
// degrades; future strategies keep scaling and cut the abort rate.
//
// Flags: --threads a,b,c --futures a,b,c --ms N --relations N
//        --customers N --window N --mix-update N (percent)
#include <cstdio>
#include <sstream>
#include <string>
#include <vector>

#include "util/timing.hpp"
#include "workloads/common/driver.hpp"
#include "workloads/vacation/vacation.hpp"

using txf::core::Config;
using txf::core::Runtime;
using txf::util::Xoshiro256;
using namespace txf::workloads;
namespace vac = txf::workloads::vacation;

int main(int argc, char** argv) {
  const Args args(argc, argv);
  const auto threads = parse_size_list("threads", args.get_str("threads", "1,2,4,8"));
  const auto futures = parse_size_list("futures", args.get_str("futures", "0,1,3,5,7"));
  const int ms = static_cast<int>(args.get_int("ms", 500));
  vac::VacationParams params;
  params.relations = static_cast<std::size_t>(args.get_int("relations", 2048));
  params.customers = static_cast<std::size_t>(args.get_int("customers", 1024));
  params.query_window =
      static_cast<std::size_t>(args.get_int("window", 128));
  const int update_pct = static_cast<int>(args.get_int("mix-update", 20));

  std::printf(
      "# Fig 6a-6c: Vacation — throughput / mean exec time / abort rate vs\n"
      "# total threads for future strategies {%s}; relations=%zu,\n"
      "# query window=%zu, window=%dms\n",
      args.get_str("futures", "0,1,3,5,7").c_str(), params.relations,
      params.query_window, ms);

  print_header({"threads", "futures", "toplevel", "tx/s", "mean_ms",
                "abort_rate"});

  for (const std::size_t total : threads) {
    for (const std::size_t f : futures) {
      const std::size_t jobs = f + 1;  // f futures + 1 continuation
      if (jobs > total && total > 0 && f > 0) continue;  // over budget
      const std::size_t top_level = f == 0 ? total : total / jobs;
      if (top_level == 0) continue;

      Config cfg;
      cfg.pool_threads = top_level * (jobs > 1 ? jobs - 1 : 1);
      Runtime rt(cfg);
      vac::VacationParams p = params;
      p.jobs = jobs;
      vac::VacationDB db(p);
      Xoshiro256 seed_rng(12345);
      db.populate(rt, seed_rng);

      const RunResult r = run_for(
          rt, top_level, ms,
          [&](std::size_t w, const std::function<bool()>& keep,
              WorkerMetrics& m) {
            Xoshiro256 rng(5000 + w);
            while (keep()) {
              const auto t0 = txf::util::now_ns();
              const auto roll = rng.next_bounded(100);
              if (roll < static_cast<std::uint64_t>(100 - update_pct)) {
                db.make_reservation(rt, rng);
              } else if (roll % 2 == 0) {
                db.delete_customer(rt, rng);
              } else {
                db.update_tables(rt, rng);
              }
              m.latency.record(txf::util::now_ns() - t0);
              ++m.transactions;
            }
          });
      print_row({std::to_string(total), std::to_string(f),
                 std::to_string(top_level), fmt(r.throughput(), 1),
                 fmt(r.mean_latency_us() / 1000.0, 3),
                 fmt(r.abort_rate(), 3)});
    }
  }
  std::printf(
      "# Expected shape (paper): flat Vacation stops scaling and its abort\n"
      "# rate climbs with thread count; allocating threads to futures keeps\n"
      "# throughput growing and cuts both abort rate and execution time.\n");
  return 0;
}
