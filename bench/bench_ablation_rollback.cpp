// Ablation B — continuation recovery strategies after an intra-tree
// conflict (the continuation missed its future's write):
//
//   tree-restart      re-execute the whole top-level transaction (the
//                     conservative FCC-free substitute, with the serial
//                     convergence fallback after repeated misses);
//   partial-rollback  FCC: rewind only the continuation to its submit
//                     point and replay it (the paper's JTF mechanism).
//
// The workload makes the conflict likely on purpose: every transaction's
// future writes a scratch box that the continuation reads immediately,
// racing it. Each worker has a private scratch box, so ALL conflicts are
// intra-tree — exactly what partial rollback targets. Bodies follow the
// FCC restrictions (single future, scalar locals).
//
// Flags: --workers N --ms N --delay N (CPU iters inside the future)
//        --post N (CPU iters of prefix work before the submit)
#include <cstdio>
#include <deque>

#include "workloads/common/driver.hpp"
#include "workloads/synthetic/synthetic.hpp"

using txf::core::Config;
using txf::core::RestartPolicy;
using txf::core::Runtime;
using txf::core::TxCtx;
using txf::util::Xoshiro256;
using namespace txf::workloads;
namespace synth = txf::workloads::synthetic;

int main(int argc, char** argv) {
  const Args args(argc, argv);
  const auto workers = static_cast<std::size_t>(args.get_int("workers", 2));
  const int ms = static_cast<int>(args.get_int("ms", 400));
  // Defaults at a scale where recovery strategy matters: both the parent
  // prefix (lost on a tree restart) and the future body are ~ms of CPU.
  const auto delay =
      static_cast<std::uint64_t>(args.get_int("delay", 2000000));
  const auto prefix =
      static_cast<std::uint64_t>(args.get_int("post", 2000000));

  std::printf(
      "# Ablation B: continuation recovery — tree-restart vs FCC partial\n"
      "# rollback; every transaction's continuation races its future on a\n"
      "# scratch box (%zu workers, future delay=%llu iters, %dms)\n",
      workers, static_cast<unsigned long long>(delay), ms);

  print_header({"policy", "tx/s", "rollbacks", "restarts", "serial"});
  for (const RestartPolicy policy :
       {RestartPolicy::kTreeRestart, RestartPolicy::kPartialRollback}) {
    Config cfg;
    cfg.pool_threads = workers;
    cfg.restart = policy;
    Runtime rt(cfg);
    std::deque<txf::stm::VBox<std::uint64_t>> scratch;
    for (std::size_t i = 0; i < workers; ++i) scratch.emplace_back(0ULL);

    const RunResult r = run_for(
        rt, workers, ms,
        [&](std::size_t w, const std::function<bool()>& keep,
            WorkerMetrics& m) {
          Xoshiro256 rng(100 + w);
          auto& box = scratch[w];
          while (keep()) {
            const std::uint64_t payload = rng.next() | 1;
            txf::core::atomically(rt, [&](TxCtx& ctx) {
              // Prefix work in the parent, before the split.
              std::uint64_t acc = synth::cpu_work(prefix, payload);
              auto f = ctx.submit([&box, payload, delay](TxCtx& c) {
                const std::uint64_t v =
                    synth::cpu_work(delay, payload) | 1;
                box.put(c, v);
                return v;
              });
              // The continuation races the future on the scratch box: on
              // the first pass this read usually misses the write and must
              // be recovered per the policy under test.
              acc += box.get(ctx);
              acc += f.get(ctx);
              box.put(ctx, acc | 1);
            });
            ++m.transactions;
          }
        });
    print_row({policy == RestartPolicy::kTreeRestart ? "tree-restart"
                                                     : "partial-rollback",
               fmt(r.throughput(), 1),
               std::to_string(r.stats_delta.partial_rollbacks),
               std::to_string(r.stats_delta.tree_restarts),
               std::to_string(r.stats_delta.serial_fallbacks)});
  }
  std::printf(
      "# Expected shape: partial rollback recovers without re-running the\n"
      "# parent prefix, so it sustains higher throughput as the prefix\n"
      "# (wasted work on restart) grows.\n");
  return 0;
}
