// Substrate comparison: the JVSTM-style multi-version STM underneath
// txfutures vs the TL2-style single-version lock-based STM (the
// TinySTM/TL2 design), on read-mostly and write-heavy flat workloads.
//
// This backs the paper's substrate choice: under MVCC, read-only
// transactions commit from a consistent snapshot without validation and
// can never abort, while TL2 readers race writers and retry. Writers pay
// for multi-versioning instead.
//
// The MVCC rows also report the group-commit pipeline breakdown
// (stm/commit_queue.hpp): requests shed by stage-1 pre-validation, batch
// count and mean size, and the mean enqueue->done dwell per request.
//
// Flags: --threads N --ms N --vars N --read-pct a,b,c --json FILE
#include <array>
#include <cstdio>
#include <deque>
#include <sstream>
#include <string>

#include <atomic>
#include <thread>
#include <vector>

#include "stm/tl2.hpp"
#include "stm/transaction.hpp"
#include "util/timing.hpp"
#include "util/xoshiro.hpp"
#include "workloads/common/driver.hpp"

using txf::util::Xoshiro256;
using namespace txf::workloads;

namespace {

struct PipelineStats {
  std::uint64_t sheds = 0;
  std::uint64_t batches = 0;
  std::uint64_t batched_requests = 0;
  double avg_batch = 0;
  double avg_dwell_ns = 0;
};

struct ReadPathSnapshot {
  std::uint64_t home_hits = 0;
  std::uint64_t list_walks = 0;
  double hit_rate = 0;
  double avg_walk = 0;
  std::array<std::uint64_t, txf::stm::ReadPathStats::kWalkBuckets> hist{};
};

ReadPathSnapshot snapshot_read_path(const txf::stm::ReadPathStats& s) {
  ReadPathSnapshot out;
  out.home_hits = s.home_hits.load(std::memory_order_relaxed);
  out.list_walks = s.list_walks.load(std::memory_order_relaxed);
  out.hit_rate = s.hit_rate();
  out.avg_walk =
      out.list_walks
          ? static_cast<double>(s.walk_steps.load(std::memory_order_relaxed)) /
                static_cast<double>(out.list_walks)
          : 0;
  for (std::size_t i = 0; i < out.hist.size(); ++i)
    out.hist[i] = s.walk_hist[i].load(std::memory_order_relaxed);
  return out;
}

struct Outcome {
  double tput;
  double abort_rate;
  PipelineStats pipe;       // MVCC only
  ReadPathSnapshot reads;   // MVCC only
};

constexpr int kReadsPerTxn = 32;
constexpr int kWritesPerTxn = 4;

Outcome run_mvcc(std::size_t threads, int ms, std::size_t n_vars,
                 int read_pct) {
  txf::stm::StmEnv env;
  std::deque<txf::stm::VBox<long>> vars;
  for (std::size_t i = 0; i < n_vars; ++i) vars.emplace_back(0L);

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> committed{0};
  std::atomic<std::uint64_t> aborted{0};
  std::vector<std::thread> workers;
  const auto t0 = txf::util::now_ns();
  for (std::size_t w = 0; w < threads; ++w) {
    workers.emplace_back([&, w] {
      Xoshiro256 rng(10 + w);
      // One Transaction per worker, re-armed with park()/reset() between
      // attempts and between transactions: set-map capacity and the EBR
      // guard slot are reused instead of reallocated per attempt.
      txf::stm::Transaction tx(env);
      while (!stop.load(std::memory_order_acquire)) {
        const bool read_only =
            rng.next_bounded(100) < static_cast<std::uint64_t>(read_pct);
        tx.reset(read_only ? txf::stm::Transaction::Mode::kReadOnly
                           : txf::stm::Transaction::Mode::kReadWrite);
        for (;;) {
          long sum = 0;
          for (int i = 0; i < kReadsPerTxn; ++i)
            sum += vars[rng.next_bounded(n_vars)].get(tx);
          if (!read_only) {
            for (int i = 0; i < kWritesPerTxn; ++i)
              vars[rng.next_bounded(n_vars)].put(tx, sum + i);
          }
          if (tx.try_commit()) break;
          aborted.fetch_add(1, std::memory_order_relaxed);
          tx.park();
          tx.reset();
        }
        committed.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(ms));
  stop.store(true, std::memory_order_release);
  for (auto& t : workers) t.join();
  const double secs = static_cast<double>(txf::util::now_ns() - t0) * 1e-9;
  const auto c = committed.load();
  const auto a = aborted.load();

  Outcome out{static_cast<double>(c) / secs,
              c + a ? static_cast<double>(a) / static_cast<double>(c + a) : 0,
              {},
              {}};
  const txf::stm::CommitSpine& q = env.queue();
  out.pipe.sheds = q.prevalidation_sheds();
  out.pipe.batches = q.batch_count();
  out.pipe.batched_requests = q.batched_requests();
  out.pipe.avg_batch =
      out.pipe.batches
          ? static_cast<double>(out.pipe.batched_requests) /
                static_cast<double>(out.pipe.batches)
          : 0;
  out.pipe.avg_dwell_ns =
      q.queue_dwell_samples()
          ? static_cast<double>(q.queue_dwell_ns()) /
                static_cast<double>(q.queue_dwell_samples())
          : 0;
  out.reads = snapshot_read_path(env.read_stats());
  return out;
}

Outcome run_tl2(std::size_t threads, int ms, std::size_t n_vars,
                int read_pct) {
  txf::stm::tl2::Tl2Env env;
  std::deque<txf::stm::tl2::Tl2Var<long>> vars;
  for (std::size_t i = 0; i < n_vars; ++i) vars.emplace_back(0L);

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> committed{0};
  std::vector<std::thread> workers;
  const auto t0 = txf::util::now_ns();
  for (std::size_t w = 0; w < threads; ++w) {
    workers.emplace_back([&, w] {
      Xoshiro256 rng(10 + w);
      while (!stop.load(std::memory_order_acquire)) {
        const bool read_only =
            rng.next_bounded(100) < static_cast<std::uint64_t>(read_pct);
        txf::stm::tl2::atomically_tl2(env, [&](txf::stm::tl2::Tl2Txn& tx) {
          long sum = 0;
          for (int i = 0; i < kReadsPerTxn; ++i)
            sum += tx.read(vars[rng.next_bounded(n_vars)]);
          if (!read_only) {
            for (int i = 0; i < kWritesPerTxn; ++i)
              tx.write(vars[rng.next_bounded(n_vars)], sum + i);
          }
        });
        committed.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(ms));
  stop.store(true, std::memory_order_release);
  for (auto& t : workers) t.join();
  const double secs = static_cast<double>(txf::util::now_ns() - t0) * 1e-9;
  const auto c = env.commits();
  const auto a = env.aborts();
  return {static_cast<double>(committed.load()) / secs,
          c + a ? static_cast<double>(a) / static_cast<double>(c + a) : 0,
          {},
          {}};
}

}  // namespace

int main(int argc, char** argv) {
  const Args args(argc, argv);
  const auto threads = static_cast<std::size_t>(args.get_int("threads", 4));
  const int ms = static_cast<int>(args.get_int("ms", 400));
  const auto n_vars = static_cast<std::size_t>(args.get_int("vars", 64));
  const auto read_pcts = parse_u64_list("read-pct", args.get_str("read-pct", "0,50,90,100"));
  const std::string json_path = args.get_str("json", "");

  std::printf(
      "# STM substrate comparison: multi-version (JVSTM-style) vs TL2\n"
      "# (%zu threads, %zu hot vars, %d reads + %d writes per rw-txn, %dms)\n",
      threads, n_vars, kReadsPerTxn, kWritesPerTxn, ms);
  print_header({"read_pct", "mvcc_tx/s", "mvcc_abort", "tl2_tx/s",
                "tl2_abort"});
  std::ostringstream json;
  json << "{\n  \"bench\": \"stm_comparison\",\n"
       << "  \"threads\": " << threads << ", \"ms\": " << ms
       << ", \"vars\": " << n_vars << ",\n  \"rows\": [";
  bool first_row = true;
  for (const auto pct_u : read_pcts) {
    const int pct = static_cast<int>(pct_u);
    const Outcome m = run_mvcc(threads, ms, n_vars, pct);
    const Outcome t = run_tl2(threads, ms, n_vars, pct);
    print_row({std::to_string(pct), fmt(m.tput, 1), fmt(m.abort_rate, 3),
               fmt(t.tput, 1), fmt(t.abort_rate, 3)});
    if (pct < 100) {
      std::printf(
          "#   pipeline: sheds=%llu batches=%llu avg_batch=%.2f "
          "avg_dwell_ns=%.0f\n",
          static_cast<unsigned long long>(m.pipe.sheds),
          static_cast<unsigned long long>(m.pipe.batches), m.pipe.avg_batch,
          m.pipe.avg_dwell_ns);
    }
    std::printf(
        "#   read path: home_hits=%llu list_walks=%llu hit_rate=%.4f "
        "avg_walk=%.2f\n",
        static_cast<unsigned long long>(m.reads.home_hits),
        static_cast<unsigned long long>(m.reads.list_walks), m.reads.hit_rate,
        m.reads.avg_walk);
    json << (first_row ? "" : ",") << "\n    {\"read_pct\": " << pct
         << ", \"mvcc_tput\": " << fmt(m.tput, 1)
         << ", \"mvcc_abort_rate\": " << fmt(m.abort_rate, 4)
         << ", \"tl2_tput\": " << fmt(t.tput, 1)
         << ", \"tl2_abort_rate\": " << fmt(t.abort_rate, 4)
         << ", \"pipeline\": {\"sheds\": " << m.pipe.sheds
         << ", \"batches\": " << m.pipe.batches
         << ", \"batched_requests\": " << m.pipe.batched_requests
         << ", \"avg_batch\": " << fmt(m.pipe.avg_batch, 2)
         << ", \"avg_dwell_ns\": " << fmt(m.pipe.avg_dwell_ns, 0) << "}"
         << ", \"read_path\": {\"home_hits\": " << m.reads.home_hits
         << ", \"list_walks\": " << m.reads.list_walks
         << ", \"hit_rate\": " << fmt(m.reads.hit_rate, 4)
         << ", \"avg_walk\": " << fmt(m.reads.avg_walk, 2)
         << ", \"walk_hist\": [";
    for (std::size_t i = 0; i < m.reads.hist.size(); ++i)
      json << (i ? ", " : "") << m.reads.hist[i];
    json << "]}}";
    first_row = false;
  }
  json << "\n  ]\n}\n";
  if (!json_path.empty()) {
    if (std::FILE* f = std::fopen(json_path.c_str(), "w")) {
      const std::string s = json.str();
      std::fwrite(s.data(), 1, s.size(), f);
      std::fclose(f);
      std::printf("# json written to %s\n", json_path.c_str());
    } else {
      std::fprintf(stderr, "cannot open %s\n", json_path.c_str());
      return 1;
    }
  }
  std::printf(
      "# Expected shape: MVCC read-only transactions never abort, so the\n"
      "# multi-version substrate wins as the read share grows; TL2 can win\n"
      "# on pure write throughput (no version-list maintenance).\n");
  return 0;
}
