// Substrate comparison: the JVSTM-style multi-version STM underneath
// txfutures vs the TL2-style single-version lock-based STM (the
// TinySTM/TL2 design), on read-mostly and write-heavy flat workloads.
//
// This backs the paper's substrate choice: under MVCC, read-only
// transactions commit from a consistent snapshot without validation and
// can never abort, while TL2 readers race writers and retry. Writers pay
// for multi-versioning instead.
//
// Flags: --threads N --ms N --vars N --read-pct a,b,c
#include <cstdio>
#include <deque>
#include <sstream>

#include <atomic>
#include <thread>
#include <vector>

#include "stm/tl2.hpp"
#include "stm/transaction.hpp"
#include "util/timing.hpp"
#include "util/xoshiro.hpp"
#include "workloads/common/driver.hpp"

using txf::util::Xoshiro256;
using namespace txf::workloads;

namespace {

struct Outcome {
  double tput;
  double abort_rate;
};

constexpr int kReadsPerTxn = 32;
constexpr int kWritesPerTxn = 4;

Outcome run_mvcc(std::size_t threads, int ms, std::size_t n_vars,
                 int read_pct) {
  txf::stm::StmEnv env;
  std::deque<txf::stm::VBox<long>> vars;
  for (std::size_t i = 0; i < n_vars; ++i) vars.emplace_back(0L);

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> committed{0};
  std::atomic<std::uint64_t> aborted{0};
  std::vector<std::thread> workers;
  const auto t0 = txf::util::now_ns();
  for (std::size_t w = 0; w < threads; ++w) {
    workers.emplace_back([&, w] {
      Xoshiro256 rng(10 + w);
      while (!stop.load(std::memory_order_acquire)) {
        const bool read_only =
            rng.next_bounded(100) < static_cast<std::uint64_t>(read_pct);
        for (;;) {
          txf::stm::Transaction tx(
              env, read_only ? txf::stm::Transaction::Mode::kReadOnly
                             : txf::stm::Transaction::Mode::kReadWrite);
          long sum = 0;
          for (int i = 0; i < kReadsPerTxn; ++i)
            sum += vars[rng.next_bounded(n_vars)].get(tx);
          if (!read_only) {
            for (int i = 0; i < kWritesPerTxn; ++i)
              vars[rng.next_bounded(n_vars)].put(tx, sum + i);
          }
          if (tx.try_commit()) break;
          aborted.fetch_add(1, std::memory_order_relaxed);
        }
        committed.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(ms));
  stop.store(true, std::memory_order_release);
  for (auto& t : workers) t.join();
  const double secs = static_cast<double>(txf::util::now_ns() - t0) * 1e-9;
  const auto c = committed.load();
  const auto a = aborted.load();
  return {static_cast<double>(c) / secs,
          c + a ? static_cast<double>(a) / static_cast<double>(c + a) : 0};
}

Outcome run_tl2(std::size_t threads, int ms, std::size_t n_vars,
                int read_pct) {
  txf::stm::tl2::Tl2Env env;
  std::deque<txf::stm::tl2::Tl2Var<long>> vars;
  for (std::size_t i = 0; i < n_vars; ++i) vars.emplace_back(0L);

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> committed{0};
  std::vector<std::thread> workers;
  const auto t0 = txf::util::now_ns();
  for (std::size_t w = 0; w < threads; ++w) {
    workers.emplace_back([&, w] {
      Xoshiro256 rng(10 + w);
      while (!stop.load(std::memory_order_acquire)) {
        const bool read_only =
            rng.next_bounded(100) < static_cast<std::uint64_t>(read_pct);
        txf::stm::tl2::atomically_tl2(env, [&](txf::stm::tl2::Tl2Txn& tx) {
          long sum = 0;
          for (int i = 0; i < kReadsPerTxn; ++i)
            sum += tx.read(vars[rng.next_bounded(n_vars)]);
          if (!read_only) {
            for (int i = 0; i < kWritesPerTxn; ++i)
              tx.write(vars[rng.next_bounded(n_vars)], sum + i);
          }
        });
        committed.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(ms));
  stop.store(true, std::memory_order_release);
  for (auto& t : workers) t.join();
  const double secs = static_cast<double>(txf::util::now_ns() - t0) * 1e-9;
  const auto c = env.commits();
  const auto a = env.aborts();
  return {static_cast<double>(committed.load()) / secs,
          c + a ? static_cast<double>(a) / static_cast<double>(c + a) : 0};
}

}  // namespace

int main(int argc, char** argv) {
  const Args args(argc, argv);
  const auto threads = static_cast<std::size_t>(args.get_int("threads", 4));
  const int ms = static_cast<int>(args.get_int("ms", 400));
  const auto n_vars = static_cast<std::size_t>(args.get_int("vars", 64));
  const auto read_pcts = parse_u64_list("read-pct", args.get_str("read-pct", "0,50,90,100"));

  std::printf(
      "# STM substrate comparison: multi-version (JVSTM-style) vs TL2\n"
      "# (%zu threads, %zu hot vars, %d reads + %d writes per rw-txn, %dms)\n",
      threads, n_vars, kReadsPerTxn, kWritesPerTxn, ms);
  print_header({"read_pct", "mvcc_tx/s", "mvcc_abort", "tl2_tx/s",
                "tl2_abort"});
  for (const auto pct_u : read_pcts) {
    const int pct = static_cast<int>(pct_u);
    const Outcome m = run_mvcc(threads, ms, n_vars, pct);
    const Outcome t = run_tl2(threads, ms, n_vars, pct);
    print_row({std::to_string(pct), fmt(m.tput, 1), fmt(m.abort_rate, 3),
               fmt(t.tput, 1), fmt(t.abort_rate, 3)});
  }
  std::printf(
      "# Expected shape: MVCC read-only transactions never abort, so the\n"
      "# multi-version substrate wins as the read share grows; TL2 can win\n"
      "# on pure write throughput (no version-list maintenance).\n");
  return 0;
}
