// Figure 5c — transaction execution latency (including retries due to
// aborts) in the conflict-prone synthetic workload, per thread-allocation
// strategy i*j. The paper reports latency reductions of up to ~400x from
// parallelizing contended transactions with futures.
//
// Flags: --total N --array N --ms N --len N --iter N --hot N --writes N
#include <cstdio>
#include <vector>

#include "util/timing.hpp"
#include "workloads/common/driver.hpp"
#include "workloads/synthetic/synthetic.hpp"

using txf::core::Config;
using txf::core::Runtime;
using txf::util::Xoshiro256;
using namespace txf::workloads;
namespace synth = txf::workloads::synthetic;

int main(int argc, char** argv) {
  const Args args(argc, argv);
  const auto total = static_cast<std::size_t>(args.get_int("total", 8));
  const auto array_size =
      static_cast<std::size_t>(args.get_int("array", 100000));
  const int ms = static_cast<int>(args.get_int("ms", 400));
  synth::UpdateParams base;
  base.prefix_len = static_cast<std::size_t>(args.get_int("len", 1000));
  base.iter = static_cast<std::uint64_t>(args.get_int("iter", 1000));
  base.hot_items = static_cast<std::size_t>(args.get_int("hot", 20));
  base.hot_writes = static_cast<std::size_t>(args.get_int("writes", 10));

  std::printf(
      "# Fig 5c: transaction latency (incl. retries) per i*j split of %zu\n"
      "# threads; prefix=%zu reads, 10 updates on 20 hot items, window=%dms\n",
      total, base.prefix_len, ms);

  print_header({"config", "mean_us", "p50_us", "p99_us", "speedup",
                "abort_rate"});
  double base_mean = 0;
  for (std::size_t j = 1; j <= total; j *= 2) {
    if (total % j != 0) continue;
    const std::size_t i = total / j;
    Config cfg;
    cfg.pool_threads = i * (j > 1 ? j - 1 : 1);
    Runtime rt(cfg);
    // Fresh array per runtime (VBox<->StmEnv lifetime contract).
    synth::SyntheticArray array(array_size);
    synth::UpdateParams p = base;
    p.jobs = j;
    const RunResult r = run_for(
        rt, i, ms,
        [&](std::size_t w, const std::function<bool()>& keep,
            WorkerMetrics& m) {
          Xoshiro256 rng(4000 + w);
          while (keep()) {
            const auto t0 = txf::util::now_ns();
            synth::run_update_tx(rt, array, rng, p);
            m.latency.record(txf::util::now_ns() - t0);
            ++m.transactions;
          }
        });
    if (j == 1) base_mean = r.mean_latency_us();
    print_row({std::to_string(i) + "*" + std::to_string(j),
               fmt(r.mean_latency_us(), 1),
               fmt(static_cast<double>(r.metrics.latency.p50()) / 1000.0, 1),
               fmt(r.p99_latency_us(), 1),
               fmt(r.mean_latency_us() > 0 ? base_mean / r.mean_latency_us()
                                           : 0,
                   2),
               fmt(r.abort_rate(), 3)});
  }
  std::printf(
      "# Expected shape (paper): latency collapses as threads move from\n"
      "# conflicting top-level transactions to intra-transaction futures —\n"
      "# fewer retries and cheaper aborts.\n");
  return 0;
}
