// Figure 6d/6e/6f — TPC-C: throughput, execution time and abort rate vs
// total thread count for the five thread-allocation strategies (flat and
// 1/3/5/7 futures per transaction).
//
// Paper setup: TPC-C "generates an inherently non-scalable workload" —
// with more than a few concurrent top-level transactions the conflict
// probability surges (warehouse/district hot boxes), so allocating threads
// to intra-transaction futures instead of extra top-level transactions
// wins by a growing margin (up to ~10.7x relative throughput at 48
// threads in the paper).
//
// Flags: --threads a,b,c --futures a,b,c --ms N --warehouses N
//        --customers N --items N --analytics N (percent of long scans)
#include <cstdio>
#include <sstream>
#include <string>
#include <vector>

#include "util/timing.hpp"
#include "workloads/common/driver.hpp"
#include "workloads/tpcc/tpcc.hpp"

using txf::core::Config;
using txf::core::Runtime;
using txf::util::Xoshiro256;
using namespace txf::workloads;
namespace tpcc = txf::workloads::tpcc;

int main(int argc, char** argv) {
  const Args args(argc, argv);
  const auto threads = parse_size_list("threads", args.get_str("threads", "1,2,4,8"));
  const auto futures = parse_size_list("futures", args.get_str("futures", "0,1,3,5,7"));
  const int ms = static_cast<int>(args.get_int("ms", 500));
  tpcc::TpccParams params;
  params.warehouses = static_cast<int>(args.get_int("warehouses", 1));
  params.customers_per_district =
      static_cast<int>(args.get_int("customers", 256));
  params.items = static_cast<int>(args.get_int("items", 1024));
  params.analytics_pct = static_cast<int>(args.get_int("analytics", 15));

  std::printf(
      "# Fig 6d-6f: TPC-C — throughput / mean exec time / abort rate vs\n"
      "# total threads for future strategies {%s}; %d warehouse(s),\n"
      "# %d customers/district, %d items, %d%% analytics, window=%dms\n",
      args.get_str("futures", "0,1,3,5,7").c_str(), params.warehouses,
      params.customers_per_district, params.items, params.analytics_pct, ms);

  print_header({"threads", "futures", "toplevel", "tx/s", "mean_ms",
                "abort_rate"});

  for (const std::size_t total : threads) {
    for (const std::size_t f : futures) {
      const std::size_t jobs = f + 1;
      if (jobs > total && f > 0) continue;
      const std::size_t top_level = f == 0 ? total : total / jobs;
      if (top_level == 0) continue;

      Config cfg;
      cfg.pool_threads = top_level * (jobs > 1 ? jobs - 1 : 1);
      Runtime rt(cfg);
      tpcc::TpccParams p = params;
      p.jobs = jobs;
      tpcc::TpccDB db(p);
      Xoshiro256 seed_rng(777);
      db.populate(rt, seed_rng);

      const RunResult r = run_for(
          rt, top_level, ms,
          [&](std::size_t w, const std::function<bool()>& keep,
              WorkerMetrics& m) {
            Xoshiro256 rng(6000 + w);
            while (keep()) {
              const auto t0 = txf::util::now_ns();
              db.run_mix(rt, rng);
              m.latency.record(txf::util::now_ns() - t0);
              ++m.transactions;
            }
          });
      print_row({std::to_string(total), std::to_string(f),
                 std::to_string(top_level), fmt(r.throughput(), 1),
                 fmt(r.mean_latency_us() / 1000.0, 3),
                 fmt(r.abort_rate(), 3)});
    }
  }
  std::printf(
      "# Expected shape (paper): flat TPC-C does not scale (abort rate\n"
      "# surges with top-level concurrency); future strategies use the same\n"
      "# threads far more effectively, with the largest relative gains at\n"
      "# the highest thread counts.\n");
  return 0;
}
