// Micro-benchmarks (google-benchmark): the raw costs underneath the paper's
// overheads discussion — VBox reads/writes, flat transaction commit, the
// helped commit queue, future submit/evaluate round-trips, and container
// operations.
#include <benchmark/benchmark.h>

#include <deque>

#include "containers/tx_map.hpp"
#include "core/api.hpp"
#include "stm/transaction.hpp"

namespace {

using txf::core::Config;
using txf::core::Runtime;
using txf::core::TxCtx;
using txf::stm::StmEnv;
using txf::stm::Transaction;
using txf::stm::VBox;

void BM_FlatRead(benchmark::State& state) {
  StmEnv env;
  VBox<long> box(1);
  for (auto _ : state) {
    Transaction tx(env);
    benchmark::DoNotOptimize(box.get(tx));
    tx.try_commit();
  }
}
BENCHMARK(BM_FlatRead);

void BM_FlatReadOnlyMode(benchmark::State& state) {
  StmEnv env;
  VBox<long> box(1);
  for (auto _ : state) {
    Transaction tx(env, Transaction::Mode::kReadOnly);
    benchmark::DoNotOptimize(box.get(tx));
    tx.try_commit();
  }
}
BENCHMARK(BM_FlatReadOnlyMode);

void BM_FlatWriteCommit(benchmark::State& state) {
  StmEnv env;
  VBox<long> box(1);
  long v = 0;
  for (auto _ : state) {
    Transaction tx(env);
    box.put(tx, ++v);
    benchmark::DoNotOptimize(tx.try_commit());
  }
}
BENCHMARK(BM_FlatWriteCommit);

void BM_FlatReadN(benchmark::State& state) {
  StmEnv env;
  const auto n = static_cast<std::size_t>(state.range(0));
  std::deque<VBox<long>> boxes;
  for (std::size_t i = 0; i < n; ++i) boxes.emplace_back(1);
  for (auto _ : state) {
    Transaction tx(env);
    long sum = 0;
    for (auto& b : boxes) sum += b.get(tx);
    benchmark::DoNotOptimize(sum);
    tx.try_commit();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_FlatReadN)->Arg(16)->Arg(256)->Arg(4096);

void BM_TreeFlatTransaction(benchmark::State& state) {
  // The core API without futures: measures tree bookkeeping overhead over
  // the flat STM path.
  Runtime rt(Config{.pool_threads = 1});
  VBox<long> box(1);
  for (auto _ : state) {
    const long v = txf::core::atomically(
        rt, [&](TxCtx& ctx) { return box.get(ctx); });
    benchmark::DoNotOptimize(v);
  }
}
BENCHMARK(BM_TreeFlatTransaction);

void BM_SubmitEvaluateRoundTrip(benchmark::State& state) {
  Runtime rt(Config{.pool_threads = 2});
  VBox<long> box(1);
  for (auto _ : state) {
    const long v = txf::core::atomically(rt, [&](TxCtx& ctx) {
      auto f = ctx.submit([&](TxCtx& c) { return box.get(c); });
      return f.get(ctx);
    });
    benchmark::DoNotOptimize(v);
  }
}
BENCHMARK(BM_SubmitEvaluateRoundTrip);

void BM_SubmitNFutures(benchmark::State& state) {
  Runtime rt(Config{.pool_threads = 2});
  VBox<long> box(1);
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    const long v = txf::core::atomically(rt, [&](TxCtx& ctx) {
      std::vector<txf::core::TxFuture<long>> fs;
      fs.reserve(static_cast<std::size_t>(n));
      for (int i = 0; i < n; ++i)
        fs.push_back(ctx.submit([&](TxCtx& c) { return box.get(c); }));
      long sum = 0;
      for (auto& f : fs) sum += f.get(ctx);
      return sum;
    });
    benchmark::DoNotOptimize(v);
  }
}
BENCHMARK(BM_SubmitNFutures)->Arg(1)->Arg(4)->Arg(8);

void BM_TxMapGet(benchmark::State& state) {
  Runtime rt(Config{.pool_threads = 1});
  txf::containers::TxMap map(1024);
  txf::core::atomically(rt, [&](TxCtx& ctx) {
    for (std::uint64_t k = 0; k < 512; ++k) map.put(ctx, k, k);
  });
  std::uint64_t k = 0;
  for (auto _ : state) {
    const auto v = txf::core::atomically(rt, [&](TxCtx& ctx) {
      return map.get(ctx, (k++) % 512).value_or(0);
    });
    benchmark::DoNotOptimize(v);
  }
}
BENCHMARK(BM_TxMapGet);

void BM_CommitQueueThroughput(benchmark::State& state) {
  // Shared across benchmark threads (multi-threaded registration below).
  static StmEnv env;
  static VBox<long> box(0);
  long v = 0;
  for (auto _ : state) {
    Transaction tx(env);
    box.put(tx, ++v);
    tx.try_commit();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_CommitQueueThroughput)->Threads(1)->Threads(2)->Threads(4);

}  // namespace

BENCHMARK_MAIN();
